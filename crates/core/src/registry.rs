//! The protocol registry: construct any [`IncentiveProtocol`] from a
//! `(name, params)` description.
//!
//! Every protocol and adapter in this crate registers here, so sweep
//! harnesses (and user-authored `.scn` spec files) can name protocols as
//! *data* instead of linking against concrete types. Adapters compose:
//! `adversary(inner = pow(w = 0.01), strategy = selfish-mining(gamma =
//! 0.5))` builds `Adversary<Pow, SelfishMining>` behind a type-erased
//! [`BoxedProtocol`].
//!
//! Construction is **fingerprint-transparent**: a [`BoxedProtocol`]
//! delegates `name()`, `params()` and `rewards_compound()` to the wrapped
//! value, so a registry-built protocol produces byte-for-byte the same
//! memoization keys and content-derived seeds as the hand-constructed
//! equivalent (pinned by `tests/fingerprints.rs`).

use crate::adversary::{
    Adversary, ForkAction, ForkEvent, ForkState, Honest, SelfishMining, StakeGrinding, Strategy,
};
use crate::mdp::{BestResponse, EquilibriumConfig, OptimalWithholding};
use crate::protocol::{IncentiveProtocol, StepOutcome, StepRewards};
use crate::protocols::{Algorand, CPos, Eos, FslPos, MlPos, Neo, Pow, SlPos};
use crate::redistribution::{Alleviation, ClusterTax, FeeLottery, Sybil, SybilSplit};
use crate::scenario::{ArgValue, ProtocolSpec};
use crate::strategies::{CashOut, MiningPool};
use fairness_stats::rng::Xoshiro256StarStar;
use std::any::Any;
use std::fmt;

// ---------------------------------------------------------------------------
// Type-erased, clonable protocol and strategy handles.
// ---------------------------------------------------------------------------

/// Object-safe cloning shim (the classic `clone_box` pattern): lets a
/// boxed protocol be cloned per Monte-Carlo repetition, which is what
/// gives stateful adapters like [`Adversary`] a fresh fork state per game.
trait CloneProtocol: IncentiveProtocol {
    fn clone_box(&self) -> Box<dyn CloneProtocol>;
}

impl<P: IncentiveProtocol + Clone + 'static> CloneProtocol for P {
    fn clone_box(&self) -> Box<dyn CloneProtocol> {
        Box::new(self.clone())
    }
}

/// Inline stepping fast path for the hottest closed-form protocols.
///
/// A `BoxedProtocol` pays one virtual call per step, which also blocks
/// the compiler from fusing the protocol's draw loop with the game loop —
/// measurable at 10⁸–10⁹ steps per sweep. For the small `Copy` protocols
/// that dominate the paper's grids, the box also keeps an inline copy and
/// [`BoxedProtocol::step_into`] dispatches on one predictable branch
/// instead, so `MiningGame<BoxedProtocol>` monomorphizes the whole hot
/// loop. The copy is made from the same constructed value, so the step
/// distribution is identical either way.
#[derive(Debug, Clone, Copy)]
enum FastStep {
    None,
    SlPos(SlPos),
    FslPos(FslPos),
    MlPos(MlPos),
}

impl FastStep {
    fn of<P: IncentiveProtocol + Clone + 'static>(protocol: &P) -> Self {
        let any: &dyn Any = protocol;
        if let Some(p) = any.downcast_ref::<SlPos>() {
            FastStep::SlPos(*p)
        } else if let Some(p) = any.downcast_ref::<FslPos>() {
            FastStep::FslPos(*p)
        } else if let Some(p) = any.downcast_ref::<MlPos>() {
            FastStep::MlPos(*p)
        } else {
            FastStep::None
        }
    }
}

/// A clonable, type-erased [`IncentiveProtocol`] — what
/// [`construct`] returns. Transparent: every trait method delegates to the
/// wrapped protocol, so labels, parameter fingerprints and step
/// distributions are exactly the wrapped value's.
pub struct BoxedProtocol {
    inner: Box<dyn CloneProtocol>,
    fast: FastStep,
}

impl BoxedProtocol {
    /// Wraps a concrete protocol value.
    #[must_use]
    pub fn new<P: IncentiveProtocol + Clone + 'static>(protocol: P) -> Self {
        let fast = FastStep::of(&protocol);
        Self {
            inner: Box::new(protocol),
            fast,
        }
    }
}

impl Clone for BoxedProtocol {
    fn clone(&self) -> Self {
        Self {
            inner: self.inner.clone_box(),
            fast: self.fast,
        }
    }
}

impl fmt::Debug for BoxedProtocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BoxedProtocol({})", self.inner.label())
    }
}

impl IncentiveProtocol for BoxedProtocol {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn label(&self) -> String {
        self.inner.label()
    }

    fn reward_per_step(&self) -> f64 {
        self.inner.reward_per_step()
    }

    fn rewards_compound(&self) -> bool {
        self.inner.rewards_compound()
    }

    fn params(&self) -> Vec<f64> {
        self.inner.params()
    }

    fn step(&self, stakes: &[f64], step_index: u64, rng: &mut Xoshiro256StarStar) -> StepRewards {
        self.inner.step(stakes, step_index, rng)
    }

    #[inline]
    fn step_into(
        &self,
        stakes: &[f64],
        step_index: u64,
        rng: &mut Xoshiro256StarStar,
        out: &mut StepOutcome,
    ) {
        match &self.fast {
            FastStep::SlPos(p) => p.step_into(stakes, step_index, rng, out),
            FastStep::FslPos(p) => p.step_into(stakes, step_index, rng, out),
            FastStep::MlPos(p) => p.step_into(stakes, step_index, rng, out),
            FastStep::None => self.inner.step_into(stakes, step_index, rng, out),
        }
    }

    fn slpos_core_reward(&self) -> Option<f64> {
        self.inner.slpos_core_reward()
    }
}

/// Object-safe cloning shim for strategies, mirroring [`CloneProtocol`].
trait CloneStrategy: Strategy {
    fn clone_box(&self) -> Box<dyn CloneStrategy>;
}

impl<S: Strategy + Clone + 'static> CloneStrategy for S {
    fn clone_box(&self) -> Box<dyn CloneStrategy> {
        Box::new(self.clone())
    }
}

/// A clonable, type-erased [`Strategy`], used as the `S` of a
/// registry-built [`Adversary`].
pub struct BoxedStrategy(Box<dyn CloneStrategy>);

impl BoxedStrategy {
    /// Wraps a concrete strategy value.
    #[must_use]
    pub fn new<S: Strategy + Clone + 'static>(strategy: S) -> Self {
        Self(Box::new(strategy))
    }
}

impl Clone for BoxedStrategy {
    fn clone(&self) -> Self {
        Self(self.0.clone_box())
    }
}

impl fmt::Debug for BoxedStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BoxedStrategy({})", self.0.name())
    }
}

impl Strategy for BoxedStrategy {
    fn name(&self) -> &'static str {
        self.0.name()
    }

    fn decide(&self, state: ForkState, event: ForkEvent) -> ForkAction {
        self.0.decide(state, event)
    }

    fn gamma(&self) -> f64 {
        self.0.gamma()
    }

    fn grinding_tries(&self) -> u32 {
        self.0.grinding_tries()
    }

    fn sybil_identities(&self) -> u32 {
        self.0.sybil_identities()
    }

    fn params(&self) -> Vec<f64> {
        self.0.params()
    }
}

// ---------------------------------------------------------------------------
// Errors.
// ---------------------------------------------------------------------------

/// Why a [`ProtocolSpec`] could not be constructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// The spec names a protocol that is not registered.
    UnknownProtocol(String),
    /// An `adversary` spec names a strategy that is not registered.
    UnknownStrategy(String),
    /// A required parameter is absent.
    MissingParam {
        /// Protocol or strategy being constructed.
        name: String,
        /// The absent parameter.
        key: String,
    },
    /// The spec passes a parameter the entry does not declare.
    UnknownParam {
        /// Protocol or strategy being constructed.
        name: String,
        /// The undeclared parameter.
        key: String,
    },
    /// The spec passes the same parameter more than once. Constructors
    /// read the *first* occurrence, so silently accepting duplicates would
    /// both mislead the author and print a form the `.scn` parser rejects.
    DuplicateParam {
        /// Protocol or strategy being constructed.
        name: String,
        /// The repeated parameter.
        key: String,
    },
    /// A parameter has the wrong shape or an out-of-domain value.
    BadParam {
        /// Protocol or strategy being constructed.
        name: String,
        /// The offending parameter.
        key: String,
        /// What was wrong.
        message: String,
    },
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::UnknownProtocol(name) => {
                write!(f, "unknown protocol `{name}` (see `repro list-protocols`)")
            }
            RegistryError::UnknownStrategy(name) => {
                write!(f, "unknown strategy `{name}` (see `repro list-protocols`)")
            }
            RegistryError::MissingParam { name, key } => {
                write!(f, "`{name}` needs the parameter `{key}`")
            }
            RegistryError::UnknownParam { name, key } => {
                write!(f, "`{name}` takes no parameter `{key}`")
            }
            RegistryError::DuplicateParam { name, key } => {
                write!(f, "`{name}` parameter `{key}` is given more than once")
            }
            RegistryError::BadParam { name, key, message } => {
                write!(f, "`{name}` parameter `{key}`: {message}")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

// ---------------------------------------------------------------------------
// Entry metadata.
// ---------------------------------------------------------------------------

/// What shape a declared parameter takes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamKind {
    /// A scalar (`w = 0.01`).
    Number,
    /// A list of scalars (`members = [0, 1]`).
    List,
    /// A nested protocol/strategy spec (`inner = ml-pos(w = 0.01)`).
    Spec,
}

/// One declared parameter of a registry entry.
#[derive(Debug, Clone, Copy)]
pub struct ParamInfo {
    /// Parameter key as written in specs.
    pub key: &'static str,
    /// Expected shape.
    pub kind: ParamKind,
    /// Default value for optional numeric parameters; `None` plus
    /// [`required`](Self::required)` == false` means the default is
    /// context-dependent (documented in [`doc`](Self::doc)).
    pub default: Option<f64>,
    /// Whether the spec must provide the parameter.
    pub required: bool,
    /// One-line description for `list-protocols`.
    pub doc: &'static str,
}

const fn num(key: &'static str, default: f64, doc: &'static str) -> ParamInfo {
    ParamInfo {
        key,
        kind: ParamKind::Number,
        default: Some(default),
        required: false,
        doc,
    }
}

const fn required(key: &'static str, kind: ParamKind, doc: &'static str) -> ParamInfo {
    ParamInfo {
        key,
        kind,
        default: None,
        required: true,
        doc,
    }
}

type Construct = fn(&Args<'_>, &[f64]) -> Result<BoxedProtocol, RegistryError>;

/// A registered protocol (or adapter).
pub struct ProtocolEntry {
    /// Spec-facing name (`pow`, `ml-pos`, `adversary`, …).
    pub name: &'static str,
    /// One-line description for `list-protocols`.
    pub summary: &'static str,
    /// Declared parameters; construction rejects undeclared keys.
    pub params: &'static [ParamInfo],
    construct: Construct,
    /// A canonical example spec — used by `list-protocols` and pinned by
    /// the fingerprint snapshot test, so every entry is provably
    /// constructible.
    example: fn() -> ProtocolSpec,
}

impl fmt::Debug for ProtocolEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProtocolEntry")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

impl ProtocolEntry {
    /// The entry's canonical example spec (constructible by definition).
    #[must_use]
    pub fn example(&self) -> ProtocolSpec {
        (self.example)()
    }

    /// Renders the signature for listings: `name(key = default, ...)`.
    #[must_use]
    pub fn signature(&self) -> String {
        if self.params.is_empty() {
            return self.name.to_owned();
        }
        let params: Vec<String> = self
            .params
            .iter()
            .map(|p| match (p.kind, p.default) {
                (ParamKind::Number, Some(default)) => format!("{} = {default}", p.key),
                (ParamKind::Number, None) => p.key.to_owned(),
                (ParamKind::List, _) => format!("{} = [..]", p.key),
                (ParamKind::Spec, _) => format!("{} = <spec>", p.key),
            })
            .collect();
        format!("{}({})", self.name, params.join(", "))
    }
}

/// A registered adversary strategy (the `strategy = ...` of `adversary`).
pub struct StrategyEntry {
    /// Spec-facing name (`honest`, `selfish-mining`, `stake-grinding`).
    pub name: &'static str,
    /// One-line description for `list-protocols`.
    pub summary: &'static str,
    /// Declared parameters.
    pub params: &'static [ParamInfo],
    construct: fn(&Args<'_>) -> Result<BoxedStrategy, RegistryError>,
}

impl fmt::Debug for StrategyEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StrategyEntry")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

impl StrategyEntry {
    /// Renders the signature for listings, mirroring
    /// [`ProtocolEntry::signature`].
    #[must_use]
    pub fn signature(&self) -> String {
        if self.params.is_empty() {
            return self.name.to_owned();
        }
        let params: Vec<String> = self
            .params
            .iter()
            .map(|p| match p.default {
                Some(default) => format!("{} = {default}", p.key),
                None => p.key.to_owned(),
            })
            .collect();
        format!("{}({})", self.name, params.join(", "))
    }
}

// ---------------------------------------------------------------------------
// Parameter resolution.
// ---------------------------------------------------------------------------

/// A spec checked against an entry's declared parameters.
struct Args<'a> {
    name: &'a str,
    spec: &'a ProtocolSpec,
    declared: &'static [ParamInfo],
}

impl<'a> Args<'a> {
    fn check(
        name: &'a str,
        spec: &'a ProtocolSpec,
        declared: &'static [ParamInfo],
    ) -> Result<Self, RegistryError> {
        for (i, (key, _)) in spec.args.iter().enumerate() {
            if !declared.iter().any(|p| p.key == key) {
                return Err(RegistryError::UnknownParam {
                    name: name.to_owned(),
                    key: key.clone(),
                });
            }
            if spec.args[..i].iter().any(|(k, _)| k == key) {
                return Err(RegistryError::DuplicateParam {
                    name: name.to_owned(),
                    key: key.clone(),
                });
            }
        }
        for p in declared {
            if p.required && spec.get(p.key).is_none() {
                return Err(RegistryError::MissingParam {
                    name: name.to_owned(),
                    key: p.key.to_owned(),
                });
            }
        }
        Ok(Self {
            name,
            spec,
            declared,
        })
    }

    fn bad(&self, key: &str, message: impl Into<String>) -> RegistryError {
        RegistryError::BadParam {
            name: self.name.to_owned(),
            key: key.to_owned(),
            message: message.into(),
        }
    }

    /// A scalar parameter, falling back to the declared default.
    fn number(&self, key: &str) -> Result<f64, RegistryError> {
        match self.spec.get(key) {
            Some(ArgValue::Number(v)) => Ok(*v),
            Some(_) => Err(self.bad(key, "expected a number")),
            None => self
                .declared
                .iter()
                .find(|p| p.key == key)
                .and_then(|p| p.default)
                .ok_or_else(|| RegistryError::MissingParam {
                    name: self.name.to_owned(),
                    key: key.to_owned(),
                }),
        }
    }

    /// A scalar parameter with no static default (`None` when absent).
    fn optional_number(&self, key: &str) -> Result<Option<f64>, RegistryError> {
        match self.spec.get(key) {
            Some(ArgValue::Number(v)) => Ok(Some(*v)),
            Some(_) => Err(self.bad(key, "expected a number")),
            None => Ok(None),
        }
    }

    /// A positive, finite scalar.
    fn positive(&self, key: &str) -> Result<f64, RegistryError> {
        let v = self.number(key)?;
        if v.is_finite() && v > 0.0 {
            Ok(v)
        } else {
            Err(self.bad(key, format!("must be positive and finite, got {v}")))
        }
    }

    /// A finite scalar `>= 0`.
    fn non_negative(&self, key: &str) -> Result<f64, RegistryError> {
        let v = self.number(key)?;
        if v.is_finite() && v >= 0.0 {
            Ok(v)
        } else {
            Err(self.bad(key, format!("must be non-negative and finite, got {v}")))
        }
    }

    /// A scalar that must be a non-negative integer.
    fn index(&self, key: &str) -> Result<usize, RegistryError> {
        let v = self.number(key)?;
        if v.fract() == 0.0 && (0.0..=u32::MAX as f64).contains(&v) {
            Ok(v as usize)
        } else {
            Err(self.bad(key, format!("must be a non-negative integer, got {v}")))
        }
    }

    /// A list parameter.
    fn list(&self, key: &str) -> Result<&'a [f64], RegistryError> {
        match self.spec.get(key) {
            Some(ArgValue::List(vs)) => Ok(vs),
            Some(_) => Err(self.bad(key, "expected a list like [0, 1]")),
            None => Err(RegistryError::MissingParam {
                name: self.name.to_owned(),
                key: key.to_owned(),
            }),
        }
    }

    /// A nested-spec parameter.
    fn spec(&self, key: &str) -> Result<&'a ProtocolSpec, RegistryError> {
        match self.spec.get(key) {
            Some(ArgValue::Spec(spec)) => Ok(spec),
            Some(_) => Err(self.bad(key, "expected a nested spec like ml-pos(w = 0.01)")),
            None => Err(RegistryError::MissingParam {
                name: self.name.to_owned(),
                key: key.to_owned(),
            }),
        }
    }
}

// ---------------------------------------------------------------------------
// The registry itself.
// ---------------------------------------------------------------------------

const W_DOC: &str = "block/proposer reward per step (fraction of total initial stake)";
const INNER_DOC: &str = "the wrapped protocol, e.g. inner = ml-pos(w = 0.01)";

static PROTOCOLS: &[ProtocolEntry] = &[
    ProtocolEntry {
        name: "pow",
        summary: "Proof-of-Work: winners drawn by fixed hash power (= the scenario's initial shares); rewards never compound",
        params: &[num("w", 0.01, W_DOC)],
        construct: |args, shares| Ok(BoxedProtocol::new(Pow::new(shares, args.positive("w")?))),
        example: || ProtocolSpec::new("pow").with("w", 0.01),
    },
    ProtocolEntry {
        name: "ml-pos",
        summary: "multi-lottery PoS: winner proportional to current stake, rewards compound (Qtum/Blackcoin)",
        params: &[num("w", 0.01, W_DOC)],
        construct: |args, _| Ok(BoxedProtocol::new(MlPos::new(args.positive("w")?))),
        example: || ProtocolSpec::new("ml-pos").with("w", 0.01),
    },
    ProtocolEntry {
        name: "sl-pos",
        summary: "single-lottery PoS: one seeded lottery per block, the rich monopolize (NXT)",
        params: &[num("w", 0.01, W_DOC)],
        construct: |args, _| Ok(BoxedProtocol::new(SlPos::new(args.positive("w")?))),
        example: || ProtocolSpec::new("sl-pos").with("w", 0.01),
    },
    ProtocolEntry {
        name: "fsl-pos",
        summary: "fair single-lottery PoS: the paper's Section 6.2 time-function treatment of SL-PoS",
        params: &[num("w", 0.01, W_DOC)],
        construct: |args, _| Ok(BoxedProtocol::new(FslPos::new(args.positive("w")?))),
        example: || ProtocolSpec::new("fsl-pos").with("w", 0.01),
    },
    ProtocolEntry {
        name: "c-pos",
        summary: "compound PoS: sharded proposer lottery plus proportional inflation (Ethereum 2.0)",
        params: &[
            num("w", 0.01, "proposer reward per epoch"),
            num("v", 0.1, "inflation (attester) reward per epoch"),
            num("shards", 1.0, "shard count P (the paper's figures use an effective P = 1)"),
        ],
        construct: |args, _| {
            let shards = args.index("shards")?;
            if shards == 0 || shards > u32::MAX as usize {
                return Err(args.bad("shards", "must be a positive integer"));
            }
            Ok(BoxedProtocol::new(CPos::new(
                args.positive("w")?,
                args.non_negative("v")?,
                shards as u32,
            )))
        },
        example: || {
            ProtocolSpec::new("c-pos")
                .with("w", 0.01)
                .with("v", 0.1)
                .with("shards", 32.0)
        },
    },
    ProtocolEntry {
        name: "neo",
        summary: "NEO-style PoS: winners by fixed voting shares, rewards paid in a separate (non-compounding) asset",
        params: &[num("w", 0.01, W_DOC)],
        construct: |args, shares| Ok(BoxedProtocol::new(Neo::new(shares, args.positive("w")?))),
        example: || ProtocolSpec::new("neo").with("w", 0.01),
    },
    ProtocolEntry {
        name: "algorand",
        summary: "Algorand-style inflation-only rewards: every miner paid proportionally each step (absolutely fair)",
        params: &[num("v", 0.1, "inflation per step")],
        construct: |args, _| Ok(BoxedProtocol::new(Algorand::new(args.positive("v")?))),
        example: || ProtocolSpec::new("algorand").with("v", 0.1),
    },
    ProtocolEntry {
        name: "eos",
        summary: "EOS-style: equal proposer pay plus proportional inflation (expectationally unfair)",
        params: &[
            num("w", 0.01, "proposer budget per round"),
            num("v", 0.1, "inflation budget per round"),
        ],
        construct: |args, _| {
            Ok(BoxedProtocol::new(Eos::new(
                args.positive("w")?,
                args.non_negative("v")?,
            )))
        },
        example: || ProtocolSpec::new("eos").with("w", 0.01).with("v", 0.1),
    },
    ProtocolEntry {
        name: "cash-out",
        summary: "adapter: the designated miner withdraws every reward, freezing her staking power (drops Assumption 4)",
        params: &[
            required("inner", ParamKind::Spec, INNER_DOC),
            num("miner", 0.0, "index of the withdrawing miner"),
            ParamInfo {
                key: "stake",
                kind: ParamKind::Number,
                default: None,
                required: false,
                doc: "her frozen staking power (default: her initial share)",
            },
        ],
        construct: |args, shares| {
            let inner = construct(args.spec("inner")?, shares)?;
            let miner = args.index("miner")?;
            if miner >= shares.len() {
                return Err(args.bad(
                    "miner",
                    format!("index {miner} out of range for {} miners", shares.len()),
                ));
            }
            let stake = match args.optional_number("stake")? {
                Some(v) if v.is_finite() && v >= 0.0 => v,
                Some(v) => {
                    return Err(args.bad("stake", format!("must be non-negative and finite, got {v}")))
                }
                None => {
                    let total: f64 = shares.iter().sum();
                    shares[miner] / total
                }
            };
            Ok(BoxedProtocol::new(CashOut::new(inner, miner, stake)))
        },
        example: || {
            ProtocolSpec::new("cash-out")
                .with("inner", ProtocolSpec::new("ml-pos").with("w", 0.01))
                .with("miner", 0.0)
                .with("stake", 0.2)
        },
    },
    ProtocolEntry {
        name: "mining-pool",
        summary: "adapter: the listed miners pool their staking power and split every win proportionally (Section 6.5)",
        params: &[
            required("inner", ParamKind::Spec, INNER_DOC),
            required("members", ParamKind::List, "pool member indices, e.g. members = [0, 1]"),
        ],
        construct: |args, shares| {
            let inner = construct(args.spec("inner")?, shares)?;
            let raw = args.list("members")?;
            let mut members = Vec::with_capacity(raw.len());
            for &v in raw {
                if v.fract() != 0.0 || v < 0.0 || v >= shares.len() as f64 {
                    return Err(args.bad(
                        "members",
                        format!("`{v}` is not a miner index below {}", shares.len()),
                    ));
                }
                members.push(v as usize);
            }
            let mut distinct = members.clone();
            distinct.sort_unstable();
            distinct.dedup();
            if distinct.len() < 2 {
                return Err(args.bad("members", "a pool needs at least two distinct members"));
            }
            Ok(BoxedProtocol::new(MiningPool::new(inner, members)))
        },
        example: || {
            ProtocolSpec::new("mining-pool")
                .with("inner", ProtocolSpec::new("ml-pos").with("w", 0.01))
                .with("members", vec![0.0, 1.0])
        },
    },
    ProtocolEntry {
        name: "adversary",
        summary: "adapter: miner 0 plays a fork-aware strategy (withholding / grinding) over a single-winner protocol",
        params: &[
            required("inner", ParamKind::Spec, INNER_DOC),
            required(
                "strategy",
                ParamKind::Spec,
                "honest | selfish-mining(gamma) | stake-grinding(tries)",
            ),
        ],
        construct: |args, shares| {
            let inner = construct(args.spec("inner")?, shares)?;
            let strategy = construct_strategy(args.spec("strategy")?)?;
            Ok(BoxedProtocol::new(Adversary::new(inner, strategy)))
        },
        example: || {
            ProtocolSpec::new("adversary")
                .with("inner", ProtocolSpec::new("pow").with("w", 0.01))
                .with(
                    "strategy",
                    ProtocolSpec::new("selfish-mining").with("gamma", 0.5),
                )
        },
    },
    ProtocolEntry {
        name: "cluster-tax",
        summary: "adapter: progressive fee on step rewards — rate grows with the recipient's wealth cluster, proceeds rebated equally",
        params: &[
            required("inner", ParamKind::Spec, INNER_DOC),
            num("strength", 0.5, "top tax rate in [0, 1] paid by the richest cluster"),
            num("decay", 0.0, "per-step decay in [0, 1] of the initial cluster tags toward current shares"),
        ],
        construct: |args, shares| {
            let inner = construct(args.spec("inner")?, shares)?;
            let strength = args.number("strength")?;
            if !(0.0..=1.0).contains(&strength) {
                return Err(args.bad("strength", format!("must be in [0, 1], got {strength}")));
            }
            let decay = args.number("decay")?;
            if !(0.0..=1.0).contains(&decay) {
                return Err(args.bad("decay", format!("must be in [0, 1], got {decay}")));
            }
            Ok(BoxedProtocol::new(ClusterTax::new(
                inner, strength, decay, shares,
            )))
        },
        example: || {
            ProtocolSpec::new("cluster-tax")
                .with("inner", ProtocolSpec::new("sl-pos").with("w", 0.01))
                .with("strength", 0.5)
                .with("decay", 0.05)
        },
    },
    ProtocolEntry {
        name: "fee-lottery",
        summary: "adapter: a flat fee on every reward funds one rebate-lottery winner per step (uniform or value-weighted)",
        params: &[
            required("inner", ParamKind::Spec, INNER_DOC),
            num("fee", 0.5, "fee rate in [0, 1] levied on every step reward"),
            num("weighted", 0.0, "1 = value-weighted (stake-proportional) rebate draw, 0 = uniform"),
        ],
        construct: |args, shares| {
            let inner = construct(args.spec("inner")?, shares)?;
            let fee = args.number("fee")?;
            if !(0.0..=1.0).contains(&fee) {
                return Err(args.bad("fee", format!("must be in [0, 1], got {fee}")));
            }
            let flag = args.number("weighted")?;
            let weighted = if flag == 0.0 {
                false
            } else if flag == 1.0 {
                true
            } else {
                return Err(args.bad("weighted", format!("must be 0 or 1, got {flag}")));
            };
            Ok(BoxedProtocol::new(FeeLottery::new(inner, fee, weighted)))
        },
        example: || {
            ProtocolSpec::new("fee-lottery")
                .with("inner", ProtocolSpec::new("ml-pos").with("w", 0.01))
                .with("fee", 0.5)
                .with("weighted", 0.0)
        },
    },
    ProtocolEntry {
        name: "alleviation",
        summary: "adapter: Naderi-style compounding alleviation — a recipient keeps (1 − share)^beta of her reward, the rest is rebated equally",
        params: &[
            required("inner", ParamKind::Spec, INNER_DOC),
            num("beta", 2.0, "discount exponent >= 0 (0 = no-op)"),
        ],
        construct: |args, shares| {
            let inner = construct(args.spec("inner")?, shares)?;
            Ok(BoxedProtocol::new(Alleviation::new(
                inner,
                args.non_negative("beta")?,
            )))
        },
        example: || {
            ProtocolSpec::new("alleviation")
                .with("inner", ProtocolSpec::new("ml-pos").with("w", 0.01))
                .with("beta", 2.0)
        },
    },
    ProtocolEntry {
        name: "sybil",
        summary: "adapter: miner 0 splits her stake across the strategy's identity count to exploit cluster-sensitive redistribution",
        params: &[
            required("inner", ParamKind::Spec, INNER_DOC),
            required(
                "strategy",
                ParamKind::Spec,
                "sybil-split(identities) | honest",
            ),
        ],
        construct: |args, shares| {
            let inner = construct(args.spec("inner")?, shares)?;
            let strategy = construct_strategy(args.spec("strategy")?)?;
            Ok(BoxedProtocol::new(Sybil::new(inner, strategy)))
        },
        example: || {
            ProtocolSpec::new("sybil")
                .with(
                    "inner",
                    ProtocolSpec::new("fee-lottery")
                        .with("inner", ProtocolSpec::new("ml-pos").with("w", 0.01))
                        .with("fee", 0.5)
                        .with("weighted", 0.0),
                )
                .with(
                    "strategy",
                    ProtocolSpec::new("sybil-split").with("identities", 10.0),
                )
        },
    },
];

static STRATEGIES: &[StrategyEntry] = &[
    StrategyEntry {
        name: "honest",
        summary: "publish every block immediately (the null strategy)",
        params: &[],
        construct: |_| Ok(BoxedStrategy::new(Honest)),
    },
    StrategyEntry {
        name: "selfish-mining",
        summary:
            "Eyal–Sirer block withholding; gamma = honest power mining the attacker's tip in a race",
        params: &[num("gamma", 0.0, "tie-break parameter in [0, 1]")],
        construct: |args| {
            let gamma = args.number("gamma")?;
            if !(0.0..=1.0).contains(&gamma) {
                return Err(args.bad("gamma", format!("must be in [0, 1], got {gamma}")));
            }
            Ok(BoxedStrategy::new(SelfishMining::new(gamma)))
        },
    },
    StrategyEntry {
        name: "stake-grinding",
        summary:
            "redraw the lottery seed up to `tries` times whenever the attacker authored her tip",
        params: &[num(
            "tries",
            1.0,
            "seed candidates per controlled block (1 = honest)",
        )],
        construct: |args| {
            let tries = args.index("tries")?;
            if tries == 0 || tries > u32::MAX as usize {
                return Err(args.bad("tries", "must be a positive integer"));
            }
            Ok(BoxedStrategy::new(StakeGrinding::new(tries as u32)))
        },
    },
    StrategyEntry {
        name: "sybil-split",
        summary: "present the attacker's stake as `identities` separate addresses (publishes honestly; pair with the `sybil` adapter)",
        params: &[num(
            "identities",
            1.0,
            "addresses the attacker splits her stake across (1 = no attack)",
        )],
        construct: |args| {
            let identities = args.index("identities")?;
            if identities == 0 || identities > u32::MAX as usize {
                return Err(args.bad("identities", "must be a positive integer"));
            }
            Ok(BoxedStrategy::new(SybilSplit::new(identities as u32)))
        },
    },
    StrategyEntry {
        name: "optimal-withholding",
        summary: "MDP-optimal block withholding: plays the value-iteration policy of the truncated fork MDP at the attacker's share",
        params: &[
            required(
                "alpha",
                ParamKind::Number,
                "attacker's mining/stake share, in (0, 0.5]",
            ),
            num("gamma", 0.0, "tie-break parameter in [0, 1]"),
            num("depth", 64.0, "fork-MDP truncation depth, integer in [2, 512]"),
        ],
        construct: |args| {
            let alpha = args.number("alpha")?;
            if !(alpha > 0.0 && alpha <= 0.5) {
                return Err(args.bad("alpha", format!("must be in (0, 0.5], got {alpha}")));
            }
            let gamma = args.number("gamma")?;
            if !(0.0..=1.0).contains(&gamma) {
                return Err(args.bad("gamma", format!("must be in [0, 1], got {gamma}")));
            }
            let depth = args.index("depth")?;
            if !(2..=512).contains(&depth) {
                return Err(args.bad("depth", format!("must be in [2, 512], got {depth}")));
            }
            Ok(BoxedStrategy::new(OptimalWithholding::new(
                alpha,
                gamma,
                depth as u32,
            )))
        },
    },
    StrategyEntry {
        name: "best-response",
        summary: "two-attacker equilibrium play: iterated optimal-withholding best responses against a frozen opponent",
        params: &[
            required(
                "alpha",
                ParamKind::Number,
                "this attacker's share, in (0, 0.5]",
            ),
            required(
                "opponent",
                ParamKind::Number,
                "the rival attacker's share; alpha + opponent must stay below 1",
            ),
            num("gamma", 0.0, "tie-break parameter in [0, 1]"),
            num("depth", 48.0, "fork-MDP truncation depth, integer in [2, 512]"),
            num("rounds", 12.0, "best-response iteration budget, integer in [1, 64]"),
        ],
        construct: |args| {
            let alpha = args.number("alpha")?;
            if !(alpha > 0.0 && alpha <= 0.5) {
                return Err(args.bad("alpha", format!("must be in (0, 0.5], got {alpha}")));
            }
            let opponent = args.number("opponent")?;
            if !(opponent > 0.0 && opponent <= 0.5) {
                return Err(args.bad("opponent", format!("must be in (0, 0.5], got {opponent}")));
            }
            if alpha + opponent >= 1.0 {
                return Err(args.bad(
                    "opponent",
                    format!("alpha + opponent must stay below 1, got {}", alpha + opponent),
                ));
            }
            let gamma = args.number("gamma")?;
            if !(0.0..=1.0).contains(&gamma) {
                return Err(args.bad("gamma", format!("must be in [0, 1], got {gamma}")));
            }
            let depth = args.index("depth")?;
            if !(2..=512).contains(&depth) {
                return Err(args.bad("depth", format!("must be in [2, 512], got {depth}")));
            }
            let rounds = args.index("rounds")?;
            if !(1..=64).contains(&rounds) {
                return Err(args.bad("rounds", format!("must be in [1, 64], got {rounds}")));
            }
            Ok(BoxedStrategy::new(BestResponse::new(
                alpha,
                opponent,
                EquilibriumConfig {
                    gamma,
                    depth: depth as u32,
                    max_rounds: rounds as u32,
                },
            )))
        },
    },
];

/// Every registered protocol, in listing order.
#[must_use]
pub fn registry() -> &'static [ProtocolEntry] {
    PROTOCOLS
}

/// Every registered adversary strategy, in listing order.
#[must_use]
pub fn strategies() -> &'static [StrategyEntry] {
    STRATEGIES
}

/// Looks a protocol entry up by spec name.
#[must_use]
pub fn find(name: &str) -> Option<&'static ProtocolEntry> {
    PROTOCOLS.iter().find(|e| e.name == name)
}

/// Constructs the protocol a spec describes. `shares` is the scenario's
/// initial share vector — [`Pow`]/[`Neo`] draw their fixed lottery weights
/// from it, and adapters validate miner indices against it.
///
/// # Errors
/// Returns a [`RegistryError`] naming the unknown entry or offending
/// parameter; nested construction errors surface from the innermost spec.
pub fn construct(spec: &ProtocolSpec, shares: &[f64]) -> Result<BoxedProtocol, RegistryError> {
    let entry =
        find(&spec.name).ok_or_else(|| RegistryError::UnknownProtocol(spec.name.clone()))?;
    let args = Args::check(entry.name, spec, entry.params)?;
    (entry.construct)(&args, shares)
}

/// Constructs the strategy a spec describes (the `strategy = ...` argument
/// of `adversary`).
///
/// # Errors
/// Returns a [`RegistryError`] naming the unknown strategy or offending
/// parameter.
pub fn construct_strategy(spec: &ProtocolSpec) -> Result<BoxedStrategy, RegistryError> {
    let entry = STRATEGIES
        .iter()
        .find(|e| e.name == spec.name)
        .ok_or_else(|| RegistryError::UnknownStrategy(spec.name.clone()))?;
    let args = Args::check(entry.name, spec, entry.params)?;
    (entry.construct)(&args)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::montecarlo::{run_ensemble, EnsembleConfig};

    const SHARES: [f64; 2] = [0.2, 0.8];

    #[test]
    fn every_entry_constructs_its_example() {
        for entry in registry() {
            let spec = entry.example();
            assert_eq!(spec.name, entry.name);
            let protocol = construct(&spec, &SHARES)
                .unwrap_or_else(|e| panic!("{} example must construct: {e}", entry.name));
            assert!(!protocol.label().is_empty());
            assert!(protocol.reward_per_step() > 0.0);
        }
    }

    #[test]
    fn constructed_protocols_match_hand_built_fingerprints() {
        // The registry must be fingerprint-transparent: same name, params
        // and compounding flag as the concrete value.
        let check = |spec: &ProtocolSpec, concrete: &dyn IncentiveProtocol| {
            let boxed = construct(spec, &SHARES).expect("constructs");
            assert_eq!(boxed.name(), concrete.name());
            assert_eq!(boxed.params(), concrete.params());
            assert_eq!(boxed.rewards_compound(), concrete.rewards_compound());
            assert_eq!(boxed.label(), concrete.label());
        };
        check(
            &ProtocolSpec::new("pow").with("w", 0.01),
            &Pow::new(&SHARES, 0.01),
        );
        check(
            &ProtocolSpec::new("c-pos")
                .with("w", 0.01)
                .with("v", 0.1)
                .with("shards", 32.0),
            &CPos::new(0.01, 0.1, 32),
        );
        check(
            &ProtocolSpec::new("cash-out")
                .with("inner", ProtocolSpec::new("ml-pos").with("w", 0.01))
                .with("miner", 0.0)
                .with("stake", 0.2),
            &CashOut::new(MlPos::new(0.01), 0, 0.2),
        );
        check(
            &ProtocolSpec::new("adversary")
                .with("inner", ProtocolSpec::new("pow").with("w", 0.01))
                .with(
                    "strategy",
                    ProtocolSpec::new("selfish-mining").with("gamma", 0.5),
                ),
            &Adversary::new(Pow::new(&SHARES, 0.01), SelfishMining::new(0.5)),
        );
        check(
            &ProtocolSpec::new("mining-pool")
                .with("inner", ProtocolSpec::new("ml-pos").with("w", 0.01))
                .with("members", vec![0.0, 1.0]),
            &MiningPool::new(MlPos::new(0.01), vec![0, 1]),
        );
    }

    #[test]
    fn defaults_fill_in() {
        // Bare names construct at paper defaults.
        let p = construct(&ProtocolSpec::new("ml-pos"), &SHARES).expect("default w");
        assert_eq!(p.params(), MlPos::new(0.01).params());
        // cash-out defaults the frozen stake to the miner's initial share.
        let spec = ProtocolSpec::new("cash-out").with("inner", ProtocolSpec::new("ml-pos"));
        let p = construct(&spec, &SHARES).expect("dynamic default");
        assert_eq!(p.params(), CashOut::new(MlPos::new(0.01), 0, 0.2).params());
    }

    #[test]
    fn boxed_protocols_run_ensembles_deterministically() {
        // The boxed adversary must behave exactly like the concrete one
        // (clone-per-repetition resets interior fork state identically).
        let spec = ProtocolSpec::new("adversary")
            .with("inner", ProtocolSpec::new("pow").with("w", 0.01))
            .with(
                "strategy",
                ProtocolSpec::new("selfish-mining").with("gamma", 0.5),
            );
        let shares = [0.3, 0.7];
        let boxed = construct(&spec, &shares).expect("constructs");
        let config = EnsembleConfig {
            checkpoints: vec![100, 300],
            ..EnsembleConfig::paper_default(0.3, 300, 60, 11)
        };
        let via_registry = run_ensemble(&boxed, &config);
        let direct = run_ensemble(
            &Adversary::new(Pow::new(&shares, 0.01), SelfishMining::new(0.5)),
            &config,
        );
        assert_eq!(via_registry.points, direct.points);
    }

    #[test]
    fn errors_are_specific() {
        let err = |spec: ProtocolSpec| construct(&spec, &SHARES).expect_err("must fail");
        assert_eq!(
            err(ProtocolSpec::new("nope")),
            RegistryError::UnknownProtocol("nope".into())
        );
        assert!(matches!(
            err(ProtocolSpec::new("pow").with("bogus", 1.0)),
            RegistryError::UnknownParam { .. }
        ));
        assert!(matches!(
            err(ProtocolSpec::new("pow").with("w", -1.0)),
            RegistryError::BadParam { .. }
        ));
        assert!(matches!(
            err(ProtocolSpec::new("cash-out")),
            RegistryError::MissingParam { .. }
        ));
        assert!(matches!(
            err(ProtocolSpec::new("cash-out")
                .with("inner", ProtocolSpec::new("ml-pos"))
                .with("miner", 7.0)),
            RegistryError::BadParam { .. }
        ));
        assert!(matches!(
            err(ProtocolSpec::new("mining-pool")
                .with("inner", ProtocolSpec::new("ml-pos"))
                .with("members", vec![1.0, 1.0])),
            RegistryError::BadParam { .. }
        ));
        // Nested errors surface from the innermost spec.
        assert_eq!(
            err(ProtocolSpec::new("adversary")
                .with("inner", ProtocolSpec::new("nope"))
                .with("strategy", ProtocolSpec::new("honest"))),
            RegistryError::UnknownProtocol("nope".into())
        );
        assert_eq!(
            err(ProtocolSpec::new("adversary")
                .with("inner", ProtocolSpec::new("pow"))
                .with("strategy", ProtocolSpec::new("sneaky"))),
            RegistryError::UnknownStrategy("sneaky".into())
        );
        let gamma = construct_strategy(&ProtocolSpec::new("selfish-mining").with("gamma", 1.5));
        assert!(matches!(gamma, Err(RegistryError::BadParam { .. })));
        // Errors render with the offending names.
        let text = err(ProtocolSpec::new("nope")).to_string();
        assert!(text.contains("nope"));
    }

    #[test]
    fn registry_names_are_unique_and_signatures_render() {
        let mut names: Vec<_> = registry().iter().map(|e| e.name).collect();
        names.extend(strategies().iter().map(|e| e.name));
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "duplicate registry names");
        assert_eq!(find("pow").expect("pow").signature(), "pow(w = 0.01)");
        assert_eq!(
            find("adversary").expect("adversary").signature(),
            "adversary(inner = <spec>, strategy = <spec>)"
        );
        assert_eq!(strategies()[1].signature(), "selfish-mining(gamma = 0)");
    }

    /// Listing-count pin: adding (or dropping) a registry entry must be a
    /// conscious act — update this count together with the README and the
    /// `repro list` output.
    #[test]
    fn registry_listing_counts_are_pinned() {
        assert_eq!(registry().len(), 15, "protocol count changed");
        assert_eq!(strategies().len(), 6, "strategy count changed");
        let names: Vec<_> = strategies().iter().map(|e| e.name).collect();
        assert_eq!(
            names,
            [
                "honest",
                "selfish-mining",
                "stake-grinding",
                "sybil-split",
                "optimal-withholding",
                "best-response",
            ]
        );
        assert_eq!(
            strategies()[4].signature(),
            "optimal-withholding(alpha, gamma = 0, depth = 64)"
        );
    }

    /// The new strategies construct through specs and reject out-of-range
    /// or duplicated parameters with named errors.
    #[test]
    fn optimal_strategies_validate_their_parameters() {
        let ok = construct_strategy(
            &ProtocolSpec::new("optimal-withholding")
                .with("alpha", 0.3)
                .with("depth", 8.0),
        )
        .expect("in-range spec must construct");
        assert_eq!(ok.name(), "optimal-withholding");

        for (spec, needle) in [
            (
                ProtocolSpec::new("optimal-withholding").with("alpha", 0.7),
                "alpha",
            ),
            (
                ProtocolSpec::new("optimal-withholding")
                    .with("alpha", 0.3)
                    .with("depth", 1.0),
                "depth",
            ),
            (
                ProtocolSpec::new("optimal-withholding")
                    .with("alpha", 0.3)
                    .with("gamma", 1.5),
                "gamma",
            ),
            (
                ProtocolSpec::new("best-response")
                    .with("alpha", 0.5)
                    .with("opponent", 0.5),
                "opponent",
            ),
            (
                ProtocolSpec::new("best-response")
                    .with("alpha", 0.3)
                    .with("opponent", 0.2)
                    .with("rounds", 0.0),
                "rounds",
            ),
        ] {
            let err = construct_strategy(&spec).expect_err("out-of-range spec must fail");
            assert!(
                err.to_string().contains(needle),
                "error for {needle} was: {err}"
            );
        }

        let missing = construct_strategy(&ProtocolSpec::new("optimal-withholding"))
            .expect_err("alpha is required");
        assert!(missing.to_string().contains("alpha"), "{missing}");
    }
}
