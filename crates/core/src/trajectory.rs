//! Checkpoint grids and λ-trajectories.

use serde::{Deserialize, Serialize};

/// A recorded trajectory: `λ_A` (or any per-miner metric) sampled at fixed
/// checkpoints.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trajectory {
    /// The checkpoints (step counts), strictly ascending.
    pub checkpoints: Vec<u64>,
    /// Metric value at each checkpoint.
    pub values: Vec<f64>,
}

impl Trajectory {
    /// The final value.
    ///
    /// # Panics
    /// Panics if the trajectory is empty.
    #[must_use]
    pub fn last(&self) -> f64 {
        *self.values.last().expect("non-empty trajectory")
    }
}

/// `count` evenly spaced checkpoints from `horizon/count` to `horizon`.
///
/// # Panics
/// Panics if `horizon == 0` or `count == 0`.
#[must_use]
pub fn linear_checkpoints(horizon: u64, count: usize) -> Vec<u64> {
    assert!(horizon > 0, "horizon must be positive");
    assert!(count > 0, "need at least one checkpoint");
    let count = count.min(horizon as usize);
    let mut pts: Vec<u64> = (1..=count)
        .map(|i| (horizon as u128 * i as u128 / count as u128) as u64)
        .collect();
    pts.dedup();
    pts
}

/// Roughly log-spaced checkpoints from 1 to `horizon` (useful for Figure 4's
/// 10⁵-block horizons).
///
/// # Panics
/// Panics if `horizon == 0` or `per_decade == 0`.
#[must_use]
pub fn log_checkpoints(horizon: u64, per_decade: usize) -> Vec<u64> {
    assert!(horizon > 0, "horizon must be positive");
    assert!(per_decade > 0, "need at least one checkpoint per decade");
    let mut pts = vec![];
    let decades = (horizon as f64).log10();
    let total = (decades * per_decade as f64).ceil() as usize;
    for i in 0..=total {
        let v = 10f64.powf(i as f64 / per_decade as f64).round() as u64;
        pts.push(v.clamp(1, horizon));
    }
    pts.push(horizon);
    pts.sort_unstable();
    pts.dedup();
    pts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_grid() {
        let pts = linear_checkpoints(1000, 10);
        assert_eq!(pts, vec![100, 200, 300, 400, 500, 600, 700, 800, 900, 1000]);
    }

    #[test]
    fn linear_grid_small_horizon() {
        let pts = linear_checkpoints(3, 10);
        assert_eq!(pts, vec![1, 2, 3]);
    }

    #[test]
    fn log_grid_shape() {
        let pts = log_checkpoints(100_000, 4);
        assert_eq!(*pts.first().expect("non-empty"), 1);
        assert_eq!(*pts.last().expect("non-empty"), 100_000);
        assert!(pts.windows(2).all(|w| w[0] < w[1]));
        // Log spacing: early gaps small, late gaps large.
        assert!(pts[1] - pts[0] < pts[pts.len() - 1] - pts[pts.len() - 2]);
    }

    #[test]
    fn trajectory_last() {
        let t = Trajectory {
            checkpoints: vec![1, 2],
            values: vec![0.5, 0.25],
        };
        assert_eq!(t.last(), 0.25);
    }

    #[test]
    #[should_panic(expected = "horizon must be positive")]
    fn zero_horizon_rejected() {
        let _ = linear_checkpoints(0, 5);
    }
}
