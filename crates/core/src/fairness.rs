//! Fairness definitions (Sections 3.1 and 4.1).
//!
//! * **Expectational fairness** (Definition 3.1): miner A holding a
//!   fraction `a` of the total resource is treated fairly in expectation if
//!   `E[λ_A] = a`, where `λ_A` is her fraction of the total reward.
//! * **(ε, δ)-robust fairness** (Definition 4.1): the protocol is robustly
//!   fair if `Pr[(1−ε)a ≤ λ_A ≤ (1+ε)a] ≥ 1 − δ`. The interval
//!   `[(1−ε)a, (1+ε)a]` is the *fair area*; its complement in `[0, 1]` is
//!   the *unfair area*, and `Pr[λ_A ∉ fair area]` is the *unfair
//!   probability* reported throughout Section 5.

use serde::{Deserialize, Serialize};

/// The `(ε, δ)` parameters of robust fairness.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpsilonDelta {
    /// Relative half-width of the fair area.
    pub epsilon: f64,
    /// Allowed probability mass outside the fair area.
    pub delta: f64,
}

impl Default for EpsilonDelta {
    /// The paper's default: ε = 0.1, δ = 0.1 (Section 5.1).
    fn default() -> Self {
        Self {
            epsilon: 0.1,
            delta: 0.1,
        }
    }
}

impl EpsilonDelta {
    /// Creates an `(ε, δ)` pair.
    ///
    /// # Panics
    /// Panics unless `ε ≥ 0` and `δ ∈ [0, 1]`.
    #[must_use]
    pub fn new(epsilon: f64, delta: f64) -> Self {
        assert!(epsilon >= 0.0, "epsilon must be >= 0, got {epsilon}");
        assert!(
            (0.0..=1.0).contains(&delta),
            "delta must be in [0,1], got {delta}"
        );
        Self { epsilon, delta }
    }

    /// The fair area `[(1−ε)a, (1+ε)a]` for initial share `a`.
    #[must_use]
    pub fn fair_area(&self, a: f64) -> (f64, f64) {
        ((1.0 - self.epsilon) * a, (1.0 + self.epsilon) * a)
    }

    /// Whether `lambda` lies in the fair area for share `a`.
    ///
    /// A relative slack of 1e-12 absorbs floating-point rounding at the
    /// boundary (e.g. `0.9 × 0.2` is not exactly `0.18` in binary), so a
    /// value mathematically on the boundary is classified as fair.
    #[must_use]
    pub fn is_fair(&self, a: f64, lambda: f64) -> bool {
        let (lo, hi) = self.fair_area(a);
        let slack = 1e-12 * (1.0 + a.abs());
        lambda >= lo - slack && lambda <= hi + slack
    }

    /// Whether an unfair probability satisfies the δ criterion.
    #[must_use]
    pub fn accepts(&self, unfair_probability: f64) -> bool {
        unfair_probability <= self.delta
    }
}

/// Empirical unfair probability: the fraction of outcomes outside the fair
/// area — the paper's main figure-3/5 metric.
///
/// # Panics
/// Panics if `samples` is empty.
#[must_use]
pub fn unfair_probability(samples: &[f64], a: f64, eps_delta: EpsilonDelta) -> f64 {
    assert!(!samples.is_empty(), "unfair probability of empty sample");
    let outside = samples
        .iter()
        .filter(|&&lambda| !eps_delta.is_fair(a, lambda))
        .count();
    outside as f64 / samples.len() as f64
}

/// Empirical expectational-fairness gap `|mean(λ) − a|`.
///
/// # Panics
/// Panics if `samples` is empty.
#[must_use]
pub fn expectational_gap(samples: &[f64], a: f64) -> f64 {
    assert!(!samples.is_empty(), "expectational gap of empty sample");
    let mean: f64 = samples.iter().sum::<f64>() / samples.len() as f64;
    (mean - a).abs()
}

/// Equitability in the sense of Fanti et al. (FC 2019, "Compounding of
/// Wealth in Proof-of-Stake Cryptocurrencies"), discussed in the paper's
/// related work: the ratio of terminal reward-fraction variance to a
/// reference variance. Lower is more equitable; 0 means deterministic
/// outcomes. Here normalized as `Var(λ) / (a(1−a))`, the variance of the
/// "all-or-nothing" game with the same expectation — so values lie in
/// `[0, 1]` for expectationally fair protocols.
///
/// # Panics
/// Panics if `samples` is empty or `a ∉ (0, 1)`.
#[must_use]
pub fn equitability(samples: &[f64], a: f64) -> f64 {
    assert!(!samples.is_empty(), "equitability of empty sample");
    assert!(a > 0.0 && a < 1.0, "share must be in (0,1), got {a}");
    let mean: f64 = samples.iter().sum::<f64>() / samples.len() as f64;
    let var: f64 = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / samples.len() as f64;
    var / (a * (1.0 - a))
}

/// Verdict of an empirical fairness evaluation at one horizon.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FairnessVerdict {
    /// Initial resource share of the tracked miner.
    pub share: f64,
    /// Sample mean of `λ`.
    pub mean_lambda: f64,
    /// Empirical unfair probability.
    pub unfair_probability: f64,
    /// Whether `|mean − a|` is within the given tolerance.
    pub expectationally_fair: bool,
    /// Whether the `(ε, δ)` criterion holds.
    pub robustly_fair: bool,
}

impl FairnessVerdict {
    /// Evaluates both fairness notions on an outcome sample.
    ///
    /// `mean_tolerance` is the acceptance band for the expectational check
    /// (statistical, since the mean is estimated from finitely many
    /// repetitions).
    ///
    /// # Panics
    /// Panics if `samples` is empty.
    #[must_use]
    pub fn evaluate(samples: &[f64], a: f64, eps_delta: EpsilonDelta, mean_tolerance: f64) -> Self {
        let mean: f64 = samples.iter().sum::<f64>() / samples.len() as f64;
        let unfair = unfair_probability(samples, a, eps_delta);
        Self {
            share: a,
            mean_lambda: mean,
            unfair_probability: unfair,
            expectationally_fair: (mean - a).abs() <= mean_tolerance,
            robustly_fair: eps_delta.accepts(unfair),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let ed = EpsilonDelta::default();
        assert_eq!(ed.epsilon, 0.1);
        assert_eq!(ed.delta, 0.1);
        let (lo, hi) = ed.fair_area(0.2);
        assert!((lo - 0.18).abs() < 1e-15);
        assert!((hi - 0.22).abs() < 1e-15);
    }

    #[test]
    fn fair_area_membership() {
        let ed = EpsilonDelta::default();
        assert!(ed.is_fair(0.2, 0.2));
        assert!(ed.is_fair(0.2, 0.18));
        assert!(ed.is_fair(0.2, 0.22));
        assert!(!ed.is_fair(0.2, 0.1799));
        assert!(!ed.is_fair(0.2, 0.2201));
    }

    #[test]
    fn zero_epsilon_requires_exactness() {
        let ed = EpsilonDelta::new(0.0, 0.0);
        assert!(ed.is_fair(0.2, 0.2));
        assert!(!ed.is_fair(0.2, 0.2000001));
    }

    #[test]
    fn unfair_probability_counts_tails() {
        let ed = EpsilonDelta::default();
        let samples = [0.2, 0.19, 0.21, 0.05, 0.5]; // 2 of 5 outside
        assert!((unfair_probability(&samples, 0.2, ed) - 0.4).abs() < 1e-15);
    }

    #[test]
    fn verdict_for_concentrated_sample() {
        let ed = EpsilonDelta::default();
        let samples = vec![0.2; 100];
        let v = FairnessVerdict::evaluate(&samples, 0.2, ed, 0.01);
        assert!(v.expectationally_fair);
        assert!(v.robustly_fair);
        assert_eq!(v.unfair_probability, 0.0);
    }

    #[test]
    fn verdict_for_bimodal_sample() {
        // The paper's "second game": win everything w.p. 0.2 else nothing —
        // expectationally fair, never robustly fair.
        let ed = EpsilonDelta::default();
        let mut samples = vec![1.0; 200];
        samples.extend(vec![0.0; 800]);
        let v = FairnessVerdict::evaluate(&samples, 0.2, ed, 0.01);
        assert!(v.expectationally_fair, "mean {}", v.mean_lambda);
        assert!(!v.robustly_fair);
        assert_eq!(v.unfair_probability, 1.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn unfair_probability_rejects_empty() {
        let _ = unfair_probability(&[], 0.2, EpsilonDelta::default());
    }

    #[test]
    #[should_panic(expected = "delta must be in")]
    fn rejects_bad_delta() {
        let _ = EpsilonDelta::new(0.1, 1.5);
    }
}
