//! Decentralization metrics over stake distributions.
//!
//! Section 6.5 argues that unfair incentives erode decentralization until
//! 51%-style attacks become cheap. These metrics quantify that erosion on
//! game end-states (and on `chain-sim` ledgers):
//!
//! * [`gini`] — the Gini coefficient of the stake distribution (0 =
//!   perfectly equal, → 1 = fully concentrated);
//! * [`hhi`] — the Herfindahl–Hirschman index, Σ share² (1/m for equal
//!   shares, 1 for monopoly);
//! * [`nakamoto_coefficient`] — the minimum number of parties controlling
//!   a majority of the resource (1 means a single 51% attacker exists);
//! * [`largest_share`] — the top miner's share, the direct 51%-attack
//!   indicator.
//!
//! # Degenerate inputs
//!
//! Redistribution and cash-out scenarios can legitimately hold miners at —
//! or drain whole sub-populations to — zero stake, so every metric shares
//! one convention for empty or all-zero inputs instead of panicking:
//! `gini`, `hhi` and `largest_share` return `0.0`, and
//! `nakamoto_coefficient` returns `0` (no party controls anything, so no
//! coalition reaches a majority). Negative, NaN or infinite entries are
//! still programming errors and panic.

/// Gini coefficient of a non-negative distribution.
///
/// Returns 0 for an empty or all-zero input (a degenerate but harmless
/// convention for freshly initialized games).
#[must_use]
pub fn gini(values: &[f64]) -> f64 {
    let m = values.len();
    if m == 0 {
        return 0.0;
    }
    assert!(
        values.iter().all(|&v| v.is_finite() && v >= 0.0),
        "gini requires non-negative finite values"
    );
    let total: f64 = values.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    // G = (2·Σ i·x_(i) / (m·Σx)) − (m+1)/m with 1-based ranks.
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as f64 + 1.0) * x)
        .sum();
    (2.0 * weighted / (m as f64 * total) - (m as f64 + 1.0) / m as f64).max(0.0)
}

/// Herfindahl–Hirschman index: the sum of squared resource shares.
///
/// Returns 0 for an empty or all-zero input (see the module docs).
///
/// # Panics
/// Panics on negative, NaN or infinite entries.
#[must_use]
pub fn hhi(values: &[f64]) -> f64 {
    assert!(
        values.iter().all(|&v| v.is_finite() && v >= 0.0),
        "HHI requires non-negative finite values"
    );
    let total: f64 = values.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    values.iter().map(|&v| (v / total).powi(2)).sum()
}

/// Nakamoto coefficient: the smallest number of parties whose combined
/// share exceeds `threshold` (default use: 0.5 for a 51% attack).
///
/// The accumulator compares un-normalized stake against `threshold *
/// total` rather than summing `v / total` shares: dividing each entry
/// first accrues one rounding per party, and at exact-threshold splits
/// (e.g. `[0.5, 0.5]` at 0.5) that drift could tip the strict `>` either
/// way and off-by-one the party count.
///
/// Returns 0 for an empty or all-zero input (see the module docs).
///
/// # Panics
/// Panics on negative, NaN or infinite entries, or if `threshold ∉ (0, 1)`.
#[must_use]
pub fn nakamoto_coefficient(values: &[f64], threshold: f64) -> usize {
    assert!(
        threshold > 0.0 && threshold < 1.0,
        "threshold must be in (0,1), got {threshold}"
    );
    assert!(
        values.iter().all(|&v| v.is_finite() && v >= 0.0),
        "Nakamoto coefficient requires non-negative finite values"
    );
    let total: f64 = values.iter().sum();
    if total <= 0.0 {
        return 0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).expect("no NaN"));
    let bar = threshold * total;
    let mut acc = 0.0;
    for (i, v) in sorted.iter().enumerate() {
        acc += v;
        if acc > bar {
            return i + 1;
        }
    }
    sorted.len()
}

/// The largest single share of the distribution.
///
/// Returns 0 for an empty or all-zero input (see the module docs).
///
/// # Panics
/// Panics on negative, NaN or infinite entries.
#[must_use]
pub fn largest_share(values: &[f64]) -> f64 {
    assert!(
        values.iter().all(|&v| v.is_finite() && v >= 0.0),
        "largest share requires non-negative finite values"
    );
    let total: f64 = values.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    values.iter().cloned().fold(0.0, f64::max) / total
}

/// Snapshot of all decentralization metrics for one stake distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecentralizationReport {
    /// Gini coefficient.
    pub gini: f64,
    /// Herfindahl–Hirschman index.
    pub hhi: f64,
    /// Parties needed for > 50% control.
    pub nakamoto: usize,
    /// Largest single share.
    pub largest_share: f64,
}

impl DecentralizationReport {
    /// Computes all metrics. Degenerate (empty or all-zero) inputs yield
    /// the all-zero report instead of panicking (see the module docs).
    ///
    /// # Panics
    /// Panics on negative, NaN or infinite entries.
    #[must_use]
    pub fn measure(values: &[f64]) -> Self {
        Self {
            gini: gini(values),
            hhi: hhi(values),
            nakamoto: nakamoto_coefficient(values, 0.5),
            largest_share: largest_share(values),
        }
    }

    /// Whether a single party already controls a majority (a standing 51%
    /// attack).
    #[must_use]
    pub fn majority_controlled(&self) -> bool {
        self.nakamoto == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_distribution_metrics() {
        let shares = vec![0.25; 4];
        let r = DecentralizationReport::measure(&shares);
        assert!(r.gini.abs() < 1e-12);
        assert!((r.hhi - 0.25).abs() < 1e-12);
        assert_eq!(r.nakamoto, 3); // 0.25+0.25 = 0.5 is not > 0.5
        assert!((r.largest_share - 0.25).abs() < 1e-12);
        assert!(!r.majority_controlled());
    }

    #[test]
    fn monopoly_metrics() {
        let shares = vec![0.999, 0.0005, 0.0005];
        let r = DecentralizationReport::measure(&shares);
        assert!(r.gini > 0.6, "gini {}", r.gini);
        assert!(r.hhi > 0.99);
        assert_eq!(r.nakamoto, 1);
        assert!(r.majority_controlled());
    }

    #[test]
    fn gini_known_value_two_party() {
        // Shares (0.2, 0.8): G = 2·(1·0.2 + 2·0.8)/(2·1) − 3/2 = 0.3.
        assert!((gini(&[0.2, 0.8]) - 0.3).abs() < 1e-12);
        // Scale invariance.
        assert!((gini(&[2.0, 8.0]) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn gini_edge_cases() {
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[0.0, 0.0]), 0.0);
        assert_eq!(gini(&[5.0]), 0.0);
    }

    #[test]
    fn hhi_ordering() {
        assert!(hhi(&[0.5, 0.5]) < hhi(&[0.9, 0.1]));
        assert!((hhi(&[1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nakamoto_tie_handling() {
        // 0.4 + 0.4 = 0.8 > 0.5 → 2 parties.
        assert_eq!(nakamoto_coefficient(&[0.4, 0.4, 0.2], 0.5), 2);
        // A 51% holder alone.
        assert_eq!(nakamoto_coefficient(&[0.51, 0.49], 0.5), 1);
        // Exactly 0.5 does not exceed the threshold.
        assert_eq!(nakamoto_coefficient(&[0.5, 0.5], 0.5), 2);
    }

    #[test]
    fn nakamoto_exact_threshold_splits_resist_float_drift() {
        // Regression: the old accumulator summed v/total per party, so at
        // exact-threshold splits the rounding of the division could push
        // the running sum past the strict `>` one party early. Scaling the
        // whole vector must never change the count, even at magnitudes
        // where v/total rounds.
        for scale in [1.0, 0.1, 3.0, 1e-8, 1e12, 7.3e5] {
            let half = [0.5 * scale, 0.5 * scale];
            assert_eq!(nakamoto_coefficient(&half, 0.5), 2, "scale {scale}");
            let thirds = [scale / 3.0; 3];
            // Two exact thirds sum to 2/3 > 0.5.
            assert_eq!(nakamoto_coefficient(&thirds, 0.5), 2, "scale {scale}");
            let quarters = [0.25 * scale; 4];
            // 0.25 + 0.25 = 0.5 is not > 0.5; a third party is needed.
            assert_eq!(nakamoto_coefficient(&quarters, 0.5), 3, "scale {scale}");
        }
        // A many-party equal split right at the threshold: k parties hold
        // exactly threshold·total, so k+1 are needed.
        let m = 64;
        let equal = vec![1.0 / m as f64; m];
        assert_eq!(nakamoto_coefficient(&equal, 0.5), m / 2 + 1);
    }

    #[test]
    fn degenerate_inputs_share_one_convention() {
        // All-zero and empty stake vectors are reachable once
        // redistribution/cash-out scenarios drain miners; every metric
        // returns its zero instead of panicking, consistently with gini.
        for degenerate in [&[][..], &[0.0, 0.0][..], &[0.0][..]] {
            assert_eq!(gini(degenerate), 0.0);
            assert_eq!(hhi(degenerate), 0.0);
            assert_eq!(nakamoto_coefficient(degenerate, 0.5), 0);
            assert_eq!(largest_share(degenerate), 0.0);
            let r = DecentralizationReport::measure(degenerate);
            assert_eq!(
                r,
                DecentralizationReport {
                    gini: 0.0,
                    hhi: 0.0,
                    nakamoto: 0,
                    largest_share: 0.0,
                }
            );
            assert!(!r.majority_controlled());
        }
        // A *partially* drained population still measures normally.
        let r = DecentralizationReport::measure(&[0.0, 0.7, 0.3]);
        assert_eq!(r.nakamoto, 1);
        assert!((r.largest_share - 0.7).abs() < 1e-12);
        assert!((r.hhi - (0.49 + 0.09)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn hhi_still_rejects_negative_entries() {
        let _ = hhi(&[0.5, -0.5]);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn nakamoto_still_rejects_bad_thresholds() {
        let _ = nakamoto_coefficient(&[0.5, 0.5], 1.5);
    }

    #[test]
    fn slpos_game_centralizes() {
        use crate::game::MiningGame;
        use crate::protocols::SlPos;
        use fairness_stats::rng::Xoshiro256StarStar;

        let mut game = MiningGame::new(SlPos::new(0.05), &crate::miner::equal_shares(5));
        let mut rng = Xoshiro256StarStar::new(3);
        let before =
            DecentralizationReport::measure(&(0..5).map(|i| game.stake(i)).collect::<Vec<_>>());
        game.run(100_000, &mut rng);
        let after =
            DecentralizationReport::measure(&(0..5).map(|i| game.stake(i)).collect::<Vec<_>>());
        assert!(
            after.gini > before.gini + 0.3,
            "gini {} → {}",
            before.gini,
            after.gini
        );
        assert!(after.majority_controlled(), "SL-PoS should centralize");
    }

    #[test]
    fn mlpos_game_stays_decentralized_in_nakamoto() {
        use crate::game::MiningGame;
        use crate::protocols::MlPos;
        use fairness_stats::rng::Xoshiro256StarStar;

        let mut game = MiningGame::new(MlPos::new(0.01), &crate::miner::equal_shares(5));
        let mut rng = Xoshiro256StarStar::new(5);
        game.run(20_000, &mut rng);
        let report =
            DecentralizationReport::measure(&(0..5).map(|i| game.stake(i)).collect::<Vec<_>>());
        // ML-PoS spreads but rarely collapses to a single majority holder
        // from an equal start at small w.
        assert!(report.nakamoto >= 2, "nakamoto {}", report.nakamoto);
    }
}
