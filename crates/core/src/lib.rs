#![warn(missing_docs)]

//! # fairness-core
//!
//! Fairness analysis for blockchain incentives — a faithful, executable
//! reproduction of *"Do the Rich Get Richer? Fairness Analysis for
//! Blockchain Incentives"* (Huang, Tang, Cong, Lim, Xu; SIGMOD 2021).
//!
//! The paper asks whether Proof-of-Stake makes the rich richer and answers
//! with two fairness notions:
//!
//! * **expectational fairness** — `E[λ_A] = a`: the expected reward share
//!   equals the initial resource share ([`fairness`], Definition 3.1);
//! * **(ε, δ)-robust fairness** — `Pr[(1−ε)a ≤ λ_A ≤ (1+ε)a] ≥ 1 − δ`:
//!   actual outcomes concentrate around the fair share ([`fairness`],
//!   Definition 4.1).
//!
//! Four incentive protocols are analyzed (and implemented here as
//! [`protocol::IncentiveProtocol`]s in [`protocols`]):
//!
//! | Protocol | Expectational | Robust |
//! |---|---|---|
//! | PoW | ✓ (Thm 3.2) | ✓ for `n ≥ ln(2/δ)/(2a²ε²)` (Thm 4.2) |
//! | ML-PoS | ✓ (Thm 3.3) | only if `1/n + w ≤ 2a²ε²/ln(2/δ)` (Thm 4.3) |
//! | SL-PoS | ✗ (Thm 3.4) | ✗ — monopolization a.s. (Thm 4.9) |
//! | C-PoS | ✓ (Thm 3.5) | if `w²(1/n+w+v)/((w+v)²P)` is small (Thm 4.10) |
//!
//! Plus the paper's remedies: the FSL-PoS time-function treatment
//! (Section 6.2) and reward withholding ([`withholding`], Section 6.3),
//! and the Section 6.4 protocol sketches (NEO, Algorand, EOS).
//!
//! ## Quick start
//!
//! ```
//! use fairness_core::prelude::*;
//!
//! // The paper's Figure 2(b) setting: a = 0.2, w = 0.01, ML-PoS.
//! let config = EnsembleConfig::paper_default(0.2, 1000, 500, 42);
//! let summary = run_ensemble(&MlPos::new(0.01), &config);
//! let last = summary.final_point();
//! assert!((last.mean - 0.2).abs() < 0.02);        // expectationally fair
//! assert!(last.unfair_probability > 0.1);          // but not robustly fair
//! ```

pub mod adversary;
pub mod config;
pub mod decentralization;
pub mod fairness;
pub mod game;
pub mod ledger;
pub mod mdp;
pub mod miner;
pub mod montecarlo;
pub mod protocol;
pub mod protocols;
pub mod redistribution;
pub mod registry;
pub mod scenario;
pub mod strategies;
pub mod theory;
pub mod trajectory;
pub mod withholding;

pub use adversary::{
    run_fork_game, Adversary, ForkAction, ForkEvent, ForkMachine, ForkState, Honest, RevenueTally,
    SelfishMining, StakeGrinding, Strategy,
};
pub use config::{GameConfig, ProtocolConfig};
pub use decentralization::DecentralizationReport;
pub use fairness::{
    equitability, expectational_gap, unfair_probability, EpsilonDelta, FairnessVerdict,
};
pub use game::MiningGame;
pub use ledger::{AggregatedTailGame, StakeLedger, TailKernel};
pub use mdp::{
    best_response_equilibrium, solve_optimal, BestResponse, Equilibrium, EquilibriumConfig,
    OptimalWithholding, SolvedPolicy,
};
pub use montecarlo::{
    run_ensemble, run_ensemble_multi, summarize, BandPoint, EnsembleConfig, EnsembleSummary,
};
pub use protocol::{IncentiveProtocol, StepRewards};
pub use protocols::{Algorand, CPos, Eos, FslPos, MlPos, Neo, Pow, SlPos};
pub use redistribution::{Alleviation, ClusterTax, FeeLottery, Sybil, SybilSplit};
pub use registry::{BoxedProtocol, BoxedStrategy, RegistryError};
pub use scenario::{
    print_scenarios, Checkpoints, ProtocolSpec, ScenarioSpec, SharesSpec, SystemSpec,
};
pub use strategies::{CashOut, MiningPool};
pub use trajectory::{linear_checkpoints, log_checkpoints, Trajectory};
pub use withholding::WithholdingSchedule;

/// Convenient glob import for experiments.
pub mod prelude {
    pub use crate::adversary::{
        run_fork_game, Adversary, Honest, RevenueTally, SelfishMining, StakeGrinding, Strategy,
    };
    pub use crate::config::{GameConfig, ProtocolConfig};
    pub use crate::decentralization::DecentralizationReport;
    pub use crate::fairness::{equitability, unfair_probability, EpsilonDelta, FairnessVerdict};
    pub use crate::game::MiningGame;
    pub use crate::ledger::{AggregatedTailGame, StakeLedger, TailKernel};
    pub use crate::mdp::{
        best_response_equilibrium, solve_optimal, BestResponse, Equilibrium, EquilibriumConfig,
        OptimalWithholding, SolvedPolicy,
    };
    pub use crate::miner::{equal_shares, paper_multi_miner, two_miner, zipf_shares};
    pub use crate::montecarlo::{
        run_ensemble, run_ensemble_multi, BandPoint, EnsembleConfig, EnsembleSummary,
    };
    pub use crate::protocol::{IncentiveProtocol, StepRewards};
    pub use crate::protocols::{Algorand, CPos, Eos, FslPos, MlPos, Neo, Pow, SlPos};
    pub use crate::redistribution::{Alleviation, ClusterTax, FeeLottery, Sybil, SybilSplit};
    pub use crate::registry::{BoxedProtocol, BoxedStrategy};
    pub use crate::scenario::{Checkpoints, ProtocolSpec, ScenarioSpec, SharesSpec, SystemSpec};
    pub use crate::strategies::{CashOut, MiningPool};
    pub use crate::theory;
    pub use crate::trajectory::{linear_checkpoints, log_checkpoints};
    pub use crate::withholding::WithholdingSchedule;
    pub use fairness_stats::rng::Xoshiro256StarStar;
}
