//! The abstract incentive-protocol interface.
//!
//! A protocol is a rule mapping the current staking-power vector to a
//! (random) reward allocation for one step. The [`crate::game::MiningGame`]
//! applies the allocation to the state — crediting earnings and, for PoS
//! protocols, compounding them into staking power (immediately, or on a
//! withholding schedule per Section 6.3).

use fairness_stats::rng::Xoshiro256StarStar;
use fairness_stats::sampling::FenwickSampler;

/// Reward allocation of one step (block or epoch).
#[derive(Debug, Clone, PartialEq)]
pub enum StepRewards {
    /// A single proposer takes the whole step reward.
    Winner(usize),
    /// The step reward is split across miners (entries sum to the step
    /// reward) — C-PoS epochs, inflation-only protocols, etc.
    Split(Vec<f64>),
}

/// A borrowed view of one step's allocation, read out of a
/// [`StepOutcome`] without moving any buffer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StepRewardsView<'a> {
    /// A single proposer takes the whole step reward.
    Winner(usize),
    /// The step reward is split across miners.
    Split(&'a [f64]),
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum OutcomeKind {
    Winner(usize),
    Split,
}

/// Reusable output and scratch state for [`IncentiveProtocol::step_into`].
///
/// One `StepOutcome` lives for the whole of a game (the
/// [`crate::game::MiningGame`] owns one) and is written anew every step,
/// so the steady-state stepping loop performs **zero heap allocations**:
/// the `Split` buffer keeps its capacity across steps, adapters borrow
/// scratch vectors from small internal pools instead of allocating, and
/// the incremental stake sampler persists between draws.
///
/// # The weighted-draw contract
///
/// [`weighted_winner`](Self::weighted_winner) keeps a [`FenwickSampler`]
/// keyed to the *identity* (address and length) of the weight slice it
/// was last built over. Reusing the live sampler is sound only while the
/// weights behind that slice are unchanged except through
/// [`note_weight_increment`](Self::note_weight_increment); any caller
/// that mutates a weight buffer it previously sampled (adapters passing
/// modified stake vectors, bulk stake changes like a withholding merge)
/// must call [`invalidate_weights`](Self::invalidate_weights) first.
/// Debug builds verify the stored weights against the slice on every
/// reuse.
#[derive(Debug, Clone)]
pub struct StepOutcome {
    kind: OutcomeKind,
    split: Vec<f64>,
    /// Scratch-vector pools for adapters (cash-out's effective stakes,
    /// a pool's aggregated slots, …). `take`/`give` discipline keeps
    /// nesting (adapters wrapping adapters) allocation-free after the
    /// first step.
    f64_pool: Vec<Vec<f64>>,
    u64_pool: Vec<Vec<u64>>,
    idx_pool: Vec<Vec<usize>>,
    /// The incremental stake sampler plus the identity of the weight
    /// slice it mirrors.
    sampler: Option<FenwickSampler>,
    sampler_key: (usize, usize),
    sampler_live: bool,
}

impl Default for StepOutcome {
    fn default() -> Self {
        Self::new()
    }
}

impl StepOutcome {
    /// Creates an empty outcome (no step recorded yet).
    #[must_use]
    pub fn new() -> Self {
        Self {
            kind: OutcomeKind::Winner(0),
            split: Vec::new(),
            f64_pool: Vec::new(),
            u64_pool: Vec::new(),
            idx_pool: Vec::new(),
            sampler: None,
            sampler_key: (0, 0),
            sampler_live: false,
        }
    }

    /// Records a winner-take-all step.
    #[inline(always)]
    pub fn set_winner(&mut self, winner: usize) {
        self.kind = OutcomeKind::Winner(winner);
    }

    /// Starts a split step over `m` miners: returns the zeroed allocation
    /// slots, reusing the buffer's capacity.
    #[inline]
    pub fn split_slots(&mut self, m: usize) -> &mut [f64] {
        self.kind = OutcomeKind::Split;
        self.split.clear();
        self.split.resize(m, 0.0);
        &mut self.split
    }

    /// Reads the recorded step without copying.
    #[inline(always)]
    #[must_use]
    pub fn view(&self) -> StepRewardsView<'_> {
        match self.kind {
            OutcomeKind::Winner(w) => StepRewardsView::Winner(w),
            OutcomeKind::Split => StepRewardsView::Split(&self.split),
        }
    }

    /// Stores an owned [`StepRewards`] (the default
    /// [`IncentiveProtocol::step_into`] bridges through this).
    pub fn assign(&mut self, rewards: StepRewards) {
        match rewards {
            StepRewards::Winner(w) => self.set_winner(w),
            StepRewards::Split(v) => {
                self.kind = OutcomeKind::Split;
                self.split.clear();
                self.split.extend_from_slice(&v);
                // Recycle the incoming allocation for adapter scratch.
                self.give_f64(v);
            }
        }
    }

    /// Copies the recorded step out as an owned [`StepRewards`] (the
    /// compatibility bridge for [`IncentiveProtocol::step`]).
    #[must_use]
    pub fn to_rewards(&self) -> StepRewards {
        match self.kind {
            OutcomeKind::Winner(w) => StepRewards::Winner(w),
            OutcomeKind::Split => StepRewards::Split(self.split.clone()),
        }
    }

    /// Installs `split` as the recorded allocation by swap, recycling the
    /// previous split buffer — lets adapters assemble an allocation in a
    /// scratch vector (while reading the current view) and commit it
    /// without copying.
    pub fn commit_split(&mut self, mut split: Vec<f64>) {
        std::mem::swap(&mut self.split, &mut split);
        self.kind = OutcomeKind::Split;
        self.give_f64(split);
    }

    /// Retained scratch vectors per pool. Balanced take/give pairs (the
    /// in-crate protocols and adapters) never exceed a handful even when
    /// nested; the cap exists so a give-only caller — e.g. a downstream
    /// protocol relying on the default `step_into`, whose returned
    /// `Split` buffer lands in the pool via [`assign`](Self::assign)
    /// every step — recycles a bounded set instead of hoarding one
    /// vector per step.
    const POOL_CAP: usize = 8;

    /// Borrows a cleared `f64` scratch vector from the pool (allocates
    /// only the first time a nesting depth is reached).
    #[must_use]
    pub fn take_f64(&mut self) -> Vec<f64> {
        self.f64_pool.pop().unwrap_or_default()
    }

    /// Returns a scratch vector to the pool (dropped if the pool is at
    /// capacity).
    pub fn give_f64(&mut self, mut v: Vec<f64>) {
        if self.f64_pool.len() < Self::POOL_CAP {
            v.clear();
            self.f64_pool.push(v);
        }
    }

    /// Borrows a cleared `u64` scratch vector from the pool.
    #[must_use]
    pub fn take_u64(&mut self) -> Vec<u64> {
        self.u64_pool.pop().unwrap_or_default()
    }

    /// Returns a `u64` scratch vector to the pool (dropped if the pool
    /// is at capacity).
    pub fn give_u64(&mut self, mut v: Vec<u64>) {
        if self.u64_pool.len() < Self::POOL_CAP {
            v.clear();
            self.u64_pool.push(v);
        }
    }

    /// Borrows a cleared index scratch vector from the pool.
    #[must_use]
    pub fn take_idx(&mut self) -> Vec<usize> {
        self.idx_pool.pop().unwrap_or_default()
    }

    /// Returns an index scratch vector to the pool (dropped if the pool
    /// is at capacity).
    pub fn give_idx(&mut self, mut v: Vec<usize>) {
        if self.idx_pool.len() < Self::POOL_CAP {
            v.clear();
            self.idx_pool.push(v);
        }
    }

    /// Draws a winner proportional to `weights` through the incremental
    /// sampler: O(log m) when the live sampler still mirrors `weights`,
    /// one O(m) rebuild otherwise. Consumes exactly one uniform draw and
    /// picks the same winner as
    /// [`crate::miner::sample_categorical`] (the tree descent inverts the
    /// same prefix-sum — see [`FenwickSampler`]).
    ///
    /// See the type-level docs for the mutation/invalidation contract.
    ///
    /// # Panics
    /// Panics if `weights` is empty, contains a negative or non-finite
    /// entry, or sums to zero (on rebuild).
    pub fn weighted_winner(&mut self, weights: &[f64], rng: &mut Xoshiro256StarStar) -> usize {
        let key = (weights.as_ptr() as usize, weights.len());
        if !(self.sampler_live && self.sampler_key == key) {
            match &mut self.sampler {
                Some(s) => s.rebuild(weights),
                None => self.sampler = Some(FenwickSampler::new(weights)),
            }
            self.sampler_key = key;
            self.sampler_live = true;
        }
        let sampler = self.sampler.as_ref().expect("sampler just ensured");
        debug_assert!(
            sampler.len() == weights.len()
                && (0..weights.len()).all(|i| sampler.weight(i).to_bits() == weights[i].to_bits()),
            "live sampler out of sync with its weights — a caller mutated a \
             sampled buffer without invalidate_weights/note_weight_increment"
        );
        sampler.sample(rng)
    }

    /// Propagates a single-category weight increase into the live sampler
    /// in O(log m). A no-op unless the sampler is live over exactly this
    /// `weights` slice — callers (the game loop) report every stake
    /// credit and the sampler picks up only the ones that concern it.
    #[inline]
    pub fn note_weight_increment(&mut self, weights: &[f64], i: usize, delta: f64) {
        if self.sampler_live && self.sampler_key == (weights.as_ptr() as usize, weights.len()) {
            if let Some(s) = &mut self.sampler {
                s.add(i, delta);
            }
        }
    }

    /// Drops the live sampler binding; the next
    /// [`weighted_winner`](Self::weighted_winner) rebuilds. Must be
    /// called after any bulk or unreported weight mutation.
    #[inline]
    pub fn invalidate_weights(&mut self) {
        self.sampler_live = false;
    }
}

impl StepRewards {
    /// Reward earned by miner `i` given the step's total reward.
    #[must_use]
    pub fn amount_for(&self, i: usize, total: f64) -> f64 {
        match self {
            StepRewards::Winner(w) => {
                if *w == i {
                    total
                } else {
                    0.0
                }
            }
            StepRewards::Split(v) => v.get(i).copied().unwrap_or(0.0),
        }
    }
}

/// An incentive protocol, in the paper's normalized units: initial stakes
/// sum to 1 and rewards are fractions thereof (Assumptions 2–3).
pub trait IncentiveProtocol: Send + Sync {
    /// Protocol name as used in the paper.
    fn name(&self) -> &'static str;

    /// Human-readable label for reports and CSV columns. Defaults to
    /// [`name`](Self::name); adapters that wrap another protocol
    /// (cash-out, pools, adversarial strategies) override this to include
    /// the inner protocol, so output rows stay unambiguous when the same
    /// adapter wraps different protocols.
    fn label(&self) -> String {
        self.name().to_owned()
    }

    /// Total reward issued per step (the paper's `w`, or `w + v` for
    /// C-PoS epochs).
    fn reward_per_step(&self) -> f64;

    /// Whether earned rewards compound into future staking power. `false`
    /// for PoW/NEO-style protocols whose lottery resource is external to
    /// the reward asset.
    fn rewards_compound(&self) -> bool {
        true
    }

    /// Stable parameter fingerprint: together with [`name`](Self::name) and
    /// [`rewards_compound`](Self::rewards_compound) it must uniquely
    /// determine the step distribution, so two protocol values with equal
    /// fingerprints are interchangeable. Memoizing sweep harnesses key
    /// their caches (and derive ensemble seeds) from it.
    fn params(&self) -> Vec<f64>;

    /// Draws one step's allocation given the current staking powers
    /// (`stakes` need not be normalized; protocols use relative weights).
    fn step(&self, stakes: &[f64], step_index: u64, rng: &mut Xoshiro256StarStar) -> StepRewards;

    /// Buffer-reuse variant of [`step`](Self::step): writes the
    /// allocation into `out` instead of returning an owned value, so a
    /// stepping loop that holds one [`StepOutcome`] performs no
    /// steady-state heap allocations.
    ///
    /// Must draw the same allocation from the same RNG stream as
    /// [`step`](Self::step) — the two are interchangeable bit-for-bit,
    /// and every CSV of the reproduction pipeline is pinned to that
    /// equivalence. The default implementation delegates to
    /// [`step`](Self::step) (correct, but allocating); every protocol in
    /// this crate overrides it with an allocation-free body. Unlike
    /// [`step`](Self::step), which validates its inputs, the hot path
    /// trusts the caller to maintain the game invariants (checked in
    /// debug builds).
    fn step_into(
        &self,
        stakes: &[f64],
        step_index: u64,
        rng: &mut Xoshiro256StarStar,
        out: &mut StepOutcome,
    ) {
        out.assign(self.step(stakes, step_index, rng));
    }

    /// If — and only if — this protocol's step distribution is exactly
    /// the bare SL-PoS `U_i/s_i` waiting-time race (no adapters, no
    /// step-index dependence), returns its block reward.
    ///
    /// This is a performance hook, not a semantic one: two-miner SL-PoS
    /// sweeps dominate the reproduction's wall-clock, and their per-step
    /// cost is latency-bound on the division-feedback chain (the winner's
    /// compounded stake is the next step's divisor). Knowing the step
    /// law, [`crate::game::MiningGame::run`] software-pipelines that
    /// chain with speculative candidate quotients — bit-identical
    /// outcomes, roughly half the per-step latency. `None` (the default)
    /// keeps the generic stepping path; **adapters must not forward
    /// this** (their step law differs from the inner protocol's).
    fn slpos_core_reward(&self) -> Option<f64> {
        None
    }
}

/// Folds a wrapped protocol's *name* into an adapter's parameter
/// fingerprint. Adapters report their own `name()`, so without this two
/// different inner protocols with equal numeric parameters (say
/// `CashOut<MlPos>` and `CashOut<SlPos>` at the same `w`) would be
/// indistinguishable to memoizing harnesses.
#[must_use]
pub fn protocol_tag<P: IncentiveProtocol + ?Sized>(inner: &P) -> f64 {
    let mut h = fairness_stats::cache::StableHasher::new();
    h.write_str(inner.name());
    f64::from_bits(h.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn winner_amounts() {
        let r = StepRewards::Winner(1);
        assert_eq!(r.amount_for(1, 0.5), 0.5);
        assert_eq!(r.amount_for(0, 0.5), 0.0);
        assert_eq!(r.amount_for(7, 0.5), 0.0);
    }

    #[test]
    fn split_amounts() {
        let r = StepRewards::Split(vec![0.1, 0.4]);
        assert_eq!(r.amount_for(0, 0.5), 0.1);
        assert_eq!(r.amount_for(1, 0.5), 0.4);
        assert_eq!(r.amount_for(2, 0.5), 0.0);
    }
}
