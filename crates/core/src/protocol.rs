//! The abstract incentive-protocol interface.
//!
//! A protocol is a rule mapping the current staking-power vector to a
//! (random) reward allocation for one step. The [`crate::game::MiningGame`]
//! applies the allocation to the state — crediting earnings and, for PoS
//! protocols, compounding them into staking power (immediately, or on a
//! withholding schedule per Section 6.3).

use fairness_stats::rng::Xoshiro256StarStar;

/// Reward allocation of one step (block or epoch).
#[derive(Debug, Clone, PartialEq)]
pub enum StepRewards {
    /// A single proposer takes the whole step reward.
    Winner(usize),
    /// The step reward is split across miners (entries sum to the step
    /// reward) — C-PoS epochs, inflation-only protocols, etc.
    Split(Vec<f64>),
}

impl StepRewards {
    /// Reward earned by miner `i` given the step's total reward.
    #[must_use]
    pub fn amount_for(&self, i: usize, total: f64) -> f64 {
        match self {
            StepRewards::Winner(w) => {
                if *w == i {
                    total
                } else {
                    0.0
                }
            }
            StepRewards::Split(v) => v.get(i).copied().unwrap_or(0.0),
        }
    }
}

/// An incentive protocol, in the paper's normalized units: initial stakes
/// sum to 1 and rewards are fractions thereof (Assumptions 2–3).
pub trait IncentiveProtocol: Send + Sync {
    /// Protocol name as used in the paper.
    fn name(&self) -> &'static str;

    /// Human-readable label for reports and CSV columns. Defaults to
    /// [`name`](Self::name); adapters that wrap another protocol
    /// (cash-out, pools, adversarial strategies) override this to include
    /// the inner protocol, so output rows stay unambiguous when the same
    /// adapter wraps different protocols.
    fn label(&self) -> String {
        self.name().to_owned()
    }

    /// Total reward issued per step (the paper's `w`, or `w + v` for
    /// C-PoS epochs).
    fn reward_per_step(&self) -> f64;

    /// Whether earned rewards compound into future staking power. `false`
    /// for PoW/NEO-style protocols whose lottery resource is external to
    /// the reward asset.
    fn rewards_compound(&self) -> bool {
        true
    }

    /// Stable parameter fingerprint: together with [`name`](Self::name) and
    /// [`rewards_compound`](Self::rewards_compound) it must uniquely
    /// determine the step distribution, so two protocol values with equal
    /// fingerprints are interchangeable. Memoizing sweep harnesses key
    /// their caches (and derive ensemble seeds) from it.
    fn params(&self) -> Vec<f64>;

    /// Draws one step's allocation given the current staking powers
    /// (`stakes` need not be normalized; protocols use relative weights).
    fn step(&self, stakes: &[f64], step_index: u64, rng: &mut Xoshiro256StarStar) -> StepRewards;
}

/// Folds a wrapped protocol's *name* into an adapter's parameter
/// fingerprint. Adapters report their own `name()`, so without this two
/// different inner protocols with equal numeric parameters (say
/// `CashOut<MlPos>` and `CashOut<SlPos>` at the same `w`) would be
/// indistinguishable to memoizing harnesses.
#[must_use]
pub fn protocol_tag<P: IncentiveProtocol + ?Sized>(inner: &P) -> f64 {
    let mut h = fairness_stats::cache::StableHasher::new();
    h.write_str(inner.name());
    f64::from_bits(h.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn winner_amounts() {
        let r = StepRewards::Winner(1);
        assert_eq!(r.amount_for(1, 0.5), 0.5);
        assert_eq!(r.amount_for(0, 0.5), 0.0);
        assert_eq!(r.amount_for(7, 0.5), 0.0);
    }

    #[test]
    fn split_amounts() {
        let r = StepRewards::Split(vec![0.1, 0.4]);
        assert_eq!(r.amount_for(0, 0.5), 0.1);
        assert_eq!(r.amount_for(1, 0.5), 0.4);
        assert_eq!(r.amount_for(2, 0.5), 0.0);
    }
}
