//! Generic finite-MDP representation and average-reward solvers.
//!
//! The machinery is deliberately small and deterministic: a sparse
//! transition table built once ([`MdpBuilder`] → [`Mdp`]), relative value
//! iteration with span-seminorm stopping ([`ValueIteration`]), and a
//! Dinkelbach outer loop ([`solve_ratio`]) for ratio-of-gains objectives
//! such as selfish-mining *relative revenue*. Everything runs
//! single-threaded over plain `f64` in a fixed order, so solved policies
//! and values are byte-stable across runs, machines and `--jobs` levels.
//!
//! Rewards carry [`CHANNELS`] parallel channels per transition. For the
//! fork MDP these are *(attacker-settled, total-settled)* block counts;
//! the ratio objective `gain₀ / gain₁` is then exactly the Eyal–Sirer
//! relative revenue.

/// Number of parallel reward channels carried per transition.
pub const CHANNELS: usize = 2;

/// One probabilistic outcome of taking an action in a state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transition {
    /// Destination state index.
    pub next: usize,
    /// Probability of this outcome (outcomes of one action sum to 1).
    pub prob: f64,
    /// Reward accrued on this outcome, per channel.
    pub reward: [f64; CHANNELS],
}

#[derive(Debug, Clone, Copy)]
struct Arc {
    next: u32,
    prob: f64,
    reward: [f64; CHANNELS],
}

/// Sparse-transition builder for an [`Mdp`]: declare the state count up
/// front, then add each state's actions in enumeration order.
#[derive(Debug)]
pub struct MdpBuilder {
    num_states: usize,
    /// Per state: list of `(action id, arc range into `arcs`)`.
    actions: Vec<Vec<(u8, u32, u32)>>,
    arcs: Vec<Arc>,
}

impl MdpBuilder {
    /// Starts a builder for `num_states` states.
    #[must_use]
    pub fn new(num_states: usize) -> Self {
        Self {
            num_states,
            actions: vec![Vec::new(); num_states],
            arcs: Vec::new(),
        }
    }

    /// Adds an action (with caller-chosen `action` id, kept for policy
    /// rendering) to `state`. Listing order is the deterministic
    /// tie-break order: when two actions achieve exactly equal value the
    /// *first listed* wins, so extracted policies are byte-stable.
    ///
    /// # Panics
    /// Panics if `state` or any destination is out of range, a
    /// probability is not in `[0, 1]`, or the probabilities do not sum
    /// to 1 within `1e-9`.
    pub fn add_action(&mut self, state: usize, action: u8, transitions: &[Transition]) {
        assert!(state < self.num_states, "state {state} out of range");
        assert!(!transitions.is_empty(), "action needs at least one outcome");
        let start = self.arcs.len() as u32;
        let mut total = 0.0f64;
        for t in transitions {
            assert!(
                t.next < self.num_states,
                "destination {} out of range",
                t.next
            );
            assert!(
                t.prob >= 0.0 && t.prob <= 1.0,
                "probability {} out of [0, 1]",
                t.prob
            );
            total += t.prob;
            self.arcs.push(Arc {
                next: t.next as u32,
                prob: t.prob,
                reward: t.reward,
            });
        }
        assert!(
            (total - 1.0).abs() < 1e-9,
            "action probabilities sum to {total}, not 1"
        );
        let len = self.arcs.len() as u32 - start;
        self.actions[state].push((action, start, len));
    }

    /// Finalizes the MDP.
    ///
    /// # Panics
    /// Panics if any state has no action.
    #[must_use]
    pub fn build(self) -> Mdp {
        let mut state_actions = Vec::with_capacity(self.num_states);
        let mut action_ids = Vec::new();
        let mut action_arcs = Vec::new();
        for (s, list) in self.actions.iter().enumerate() {
            assert!(!list.is_empty(), "state {s} has no action");
            state_actions.push((action_ids.len() as u32, list.len() as u32));
            for &(id, start, len) in list {
                action_ids.push(id);
                action_arcs.push((start, len));
            }
        }
        Mdp {
            state_actions,
            action_ids,
            action_arcs,
            arcs: self.arcs,
        }
    }
}

/// A finite MDP with sparse transitions and [`CHANNELS`] reward channels.
#[derive(Debug)]
pub struct Mdp {
    /// Per state: `(first action, action count)` into the action arrays.
    state_actions: Vec<(u32, u32)>,
    action_ids: Vec<u8>,
    action_arcs: Vec<(u32, u32)>,
    arcs: Vec<Arc>,
}

impl Mdp {
    /// Number of states.
    #[must_use]
    pub fn num_states(&self) -> usize {
        self.state_actions.len()
    }

    /// Number of actions available in `state`.
    #[must_use]
    pub fn num_actions(&self, state: usize) -> usize {
        self.state_actions[state].1 as usize
    }

    /// The caller-chosen id of `state`'s `choice`-th action.
    #[must_use]
    pub fn action_id(&self, state: usize, choice: usize) -> u8 {
        let (start, len) = self.state_actions[state];
        assert!((choice as u32) < len, "choice {choice} out of range");
        self.action_ids[start as usize + choice]
    }

    /// Expected one-step value of `state`'s `choice`-th action under
    /// weighted rewards plus continuation values `v`.
    fn q_value(&self, state: usize, choice: usize, weights: [f64; CHANNELS], v: &[f64]) -> f64 {
        let (start, _) = self.state_actions[state];
        let (arc_start, arc_len) = self.action_arcs[start as usize + choice];
        let mut q = 0.0;
        for arc in &self.arcs[arc_start as usize..(arc_start + arc_len) as usize] {
            let r = weights[0] * arc.reward[0] + weights[1] * arc.reward[1];
            q += arc.prob * (r + v[arc.next as usize]);
        }
        q
    }
}

/// Result of one average-reward solve.
#[derive(Debug, Clone)]
pub struct Solution {
    /// Long-run average weighted reward per step (unichain gain).
    pub gain: f64,
    /// Greedy policy: per state, the *position* of the chosen action in
    /// that state's listing order (ties broken toward the first listed).
    pub policy: Vec<u8>,
    /// Value-iteration sweeps performed.
    pub sweeps: u32,
    /// Whether the span-seminorm stopping rule was met within the sweep
    /// budget.
    pub converged: bool,
}

/// Relative value iteration for average-reward (unichain) MDPs with
/// span-seminorm stopping: iterate `v ← Tv − (Tv)(s₀)` until
/// `span(Tv − v) < ε`, at which point the gain is bracketed by
/// `[min, max]` of the per-state differences.
#[derive(Debug, Clone, Copy)]
pub struct ValueIteration {
    /// Span-seminorm stopping threshold.
    pub epsilon: f64,
    /// Sweep budget; exceeding it returns `converged = false`.
    pub max_sweeps: u32,
}

impl Default for ValueIteration {
    fn default() -> Self {
        Self {
            epsilon: 1e-10,
            max_sweeps: 200_000,
        }
    }
}

/// Aperiodicity-transformation weight: each sweep applies
/// `v ← τ·v + (1−τ)·Tv`, equivalent to solving the MDP with transitions
/// `τI + (1−τ)P` and rewards `(1−τ)r`. The transform leaves optimal
/// policies (and exact-tie ordering) unchanged, scales the gain by
/// `1−τ` (undone before reporting), and guarantees span convergence even
/// on periodic chains.
const TAU: f64 = 0.05;

impl ValueIteration {
    /// Solves `max_π avg(weights · reward)` by relative value iteration.
    /// `v` is the value vector, kept across calls as a warm start (it is
    /// resized and zeroed only when its length does not match).
    #[must_use]
    pub fn solve(&self, mdp: &Mdp, weights: [f64; CHANNELS], v: &mut Vec<f64>) -> Solution {
        self.run(mdp, weights, v, None)
    }

    /// Computes the average weighted reward of a *fixed* policy (given as
    /// per-state action positions) by the same iteration without the max.
    #[must_use]
    pub fn evaluate(
        &self,
        mdp: &Mdp,
        policy: &[u8],
        weights: [f64; CHANNELS],
        v: &mut Vec<f64>,
    ) -> Solution {
        self.run(mdp, weights, v, Some(policy))
    }

    fn run(
        &self,
        mdp: &Mdp,
        weights: [f64; CHANNELS],
        v: &mut Vec<f64>,
        fixed: Option<&[u8]>,
    ) -> Solution {
        let n = mdp.num_states();
        assert!(n > 0, "empty MDP");
        if v.len() != n {
            v.clear();
            v.resize(n, 0.0);
        }
        let mut next = vec![0.0f64; n];
        let mut policy = vec![0u8; n];
        let mut gain = 0.0;
        let mut converged = false;
        let mut sweeps = 0;
        while sweeps < self.max_sweeps {
            sweeps += 1;
            for s in 0..n {
                let best = match fixed {
                    Some(p) => {
                        policy[s] = p[s];
                        mdp.q_value(s, p[s] as usize, weights, v)
                    }
                    None => {
                        let count = mdp.num_actions(s);
                        let mut best = mdp.q_value(s, 0, weights, v);
                        let mut best_choice = 0u8;
                        for c in 1..count {
                            let q = mdp.q_value(s, c, weights, v);
                            // Strict `>`: exact ties keep the first-listed
                            // action, making extracted policies byte-stable.
                            if q > best {
                                best = q;
                                best_choice = c as u8;
                            }
                        }
                        policy[s] = best_choice;
                        best
                    }
                };
                next[s] = TAU * v[s] + (1.0 - TAU) * best;
            }
            let mut lo = next[0] - v[0];
            let mut hi = lo;
            for s in 1..n {
                let d = next[s] - v[s];
                lo = lo.min(d);
                hi = hi.max(d);
            }
            gain = 0.5 * (lo + hi) / (1.0 - TAU);
            // Normalize at the reference state so values stay bounded.
            let offset = next[0];
            for s in 0..n {
                v[s] = next[s] - offset;
            }
            if hi - lo < self.epsilon {
                converged = true;
                break;
            }
        }
        Solution {
            gain,
            policy,
            sweeps,
            converged,
        }
    }
}

/// Result of a [`solve_ratio`] Dinkelbach solve.
#[derive(Debug, Clone)]
pub struct RatioSolution {
    /// The optimized ratio `gain₀ / gain₁`.
    pub ratio: f64,
    /// Per-channel gains of the final policy.
    pub gains: [f64; CHANNELS],
    /// The optimizing policy (per-state action positions).
    pub policy: Vec<u8>,
    /// Dinkelbach rounds performed.
    pub rounds: u32,
    /// Whether the ratio reached a fixed point (and every inner solve
    /// converged) within the round budget.
    pub converged: bool,
}

/// Maximizes the ratio of channel gains `gain₀(π) / gain₁(π)` over
/// policies by Dinkelbach iteration: repeatedly solve the average-reward
/// MDP with weighted reward `r₀ − ρ·r₁`, re-evaluate the greedy policy's
/// channel gains, and update `ρ ← gain₀/gain₁` until the fixed point.
///
/// Requires `gain₁(π) > 0` for every policy (every policy keeps settling
/// rewards on channel 1) — the fork MDP's truncation closure guarantees
/// it. Seeding with the ratio of a known policy guarantees the result is
/// at least that policy's ratio (each Dinkelbach round is monotone).
#[must_use]
pub fn solve_ratio(
    mdp: &Mdp,
    vi: &ValueIteration,
    initial_ratio: f64,
    max_rounds: u32,
) -> RatioSolution {
    let mut ratio = initial_ratio;
    let mut v = Vec::new();
    let mut v0 = Vec::new();
    let mut v1 = Vec::new();
    let mut best = None;
    let mut rounds = 0;
    let mut converged = false;
    while rounds < max_rounds {
        rounds += 1;
        let sol = vi.solve(mdp, [1.0, -ratio], &mut v);
        let g0 = vi.evaluate(mdp, &sol.policy, [1.0, 0.0], &mut v0);
        let g1 = vi.evaluate(mdp, &sol.policy, [0.0, 1.0], &mut v1);
        let inner_ok = sol.converged && g0.converged && g1.converged;
        let new_ratio = if g1.gain > 0.0 {
            g0.gain / g1.gain
        } else {
            0.0
        };
        best = Some(RatioSolution {
            ratio: new_ratio,
            gains: [g0.gain, g1.gain],
            policy: sol.policy,
            rounds,
            converged: false,
        });
        // Fixed-point threshold one order above the inner VI epsilon:
        // numerically tied policies can leave the ratio oscillating at the
        // ~1e-10 level forever, so demanding more precision than the inner
        // solves deliver would spin the round budget without converging.
        if (new_ratio - ratio).abs() < 1e-9 {
            converged = inner_ok;
            break;
        }
        ratio = new_ratio;
    }
    let mut out = best.expect("at least one Dinkelbach round");
    out.rounds = rounds;
    out.converged = converged;
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A two-state chain where action 1 in state 0 trades channel-0 reward
    /// for channel-1 cost.
    fn toy() -> Mdp {
        let mut b = MdpBuilder::new(2);
        // State 0: stay (r = [1, 1]) or jump (r = [3, 4]).
        b.add_action(
            0,
            0,
            &[Transition {
                next: 0,
                prob: 1.0,
                reward: [1.0, 1.0],
            }],
        );
        b.add_action(
            0,
            1,
            &[Transition {
                next: 1,
                prob: 1.0,
                reward: [3.0, 4.0],
            }],
        );
        // State 1: return.
        b.add_action(
            1,
            0,
            &[Transition {
                next: 0,
                prob: 1.0,
                reward: [0.0, 1.0],
            }],
        );
        b.build()
    }

    #[test]
    fn weighted_solve_picks_the_better_loop() {
        // Weighted reward = channel 0 only: staying earns 1/step, the
        // round trip earns 3 per 2 steps = 1.5/step.
        let mdp = toy();
        let vi = ValueIteration::default();
        let sol = vi.solve(&mdp, [1.0, 0.0], &mut Vec::new());
        assert!(sol.converged);
        assert!((sol.gain - 1.5).abs() < 1e-8, "gain {}", sol.gain);
        assert_eq!(sol.policy[0], 1, "jump is optimal");
    }

    #[test]
    fn ratio_solve_maximizes_the_quotient() {
        // Stay: ratio 1/1 = 1. Round trip: (3+0)/(4+1) = 0.6. The ratio
        // objective prefers staying even though channel 0 alone prefers
        // the round trip.
        let mdp = toy();
        let sol = solve_ratio(&mdp, &ValueIteration::default(), 0.0, 50);
        assert!(sol.converged);
        assert!((sol.ratio - 1.0).abs() < 1e-8, "ratio {}", sol.ratio);
        assert_eq!(sol.policy[0], 0, "staying maximizes the ratio");
    }

    #[test]
    fn evaluate_fixed_policy_gains() {
        let mdp = toy();
        let vi = ValueIteration::default();
        let jump = vec![1u8, 0u8];
        let g0 = vi.evaluate(&mdp, &jump, [1.0, 0.0], &mut Vec::new());
        let g1 = vi.evaluate(&mdp, &jump, [0.0, 1.0], &mut Vec::new());
        assert!((g0.gain - 1.5).abs() < 1e-8);
        assert!((g1.gain - 2.5).abs() < 1e-8);
    }

    #[test]
    fn ties_break_toward_the_first_listed_action() {
        let mut b = MdpBuilder::new(1);
        for id in 0..3u8 {
            b.add_action(
                0,
                id,
                &[Transition {
                    next: 0,
                    prob: 1.0,
                    reward: [2.0, 0.0],
                }],
            );
        }
        let mdp = b.build();
        let sol = ValueIteration::default().solve(&mdp, [1.0, 0.0], &mut Vec::new());
        assert_eq!(sol.policy[0], 0, "exact ties must keep the first action");
    }

    #[test]
    #[should_panic(expected = "sum to")]
    fn builder_rejects_leaky_probabilities() {
        let mut b = MdpBuilder::new(1);
        b.add_action(
            0,
            0,
            &[Transition {
                next: 0,
                prob: 0.5,
                reward: [0.0; 2],
            }],
        );
    }

    #[test]
    #[should_panic(expected = "no action")]
    fn builder_rejects_actionless_states() {
        let _ = MdpBuilder::new(1).build();
    }
}
