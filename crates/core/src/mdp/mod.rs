//! Optimal adversaries: value-iteration withholding policies over the
//! fork-state MDP, and best-response equilibrium search between two
//! strategic miners.
//!
//! [`SelfishMining`] is one fixed heuristic; this module computes the
//! *best attainable* withholding policy (Sapirshtein et al.'s
//! optimal-selfish-mining question, posed inside this repo's
//! [`ForkMachine`](crate::adversary::ForkMachine) semantics):
//!
//! * [`solver`] — generic finite-MDP representation plus relative value
//!   iteration with span-seminorm stopping and a Dinkelbach ratio loop;
//! * [`fork`] — the fork-state MDP over `(attacker lead, public length,
//!   published, event)` with truncation-depth closure;
//! * [`OptimalWithholding`] — a [`Strategy`] that plays the solved policy
//!   by table lookup. Solving is lazy and memoized through a
//!   content-addressed cache ([`solve_optimal`]), so `.scn` sweeps and
//!   ensembles construct it for free and solve once per `(α, γ, depth)`;
//! * [`best_response_equilibrium`] + [`BestResponse`] — iterated policy
//!   solves between two attackers under a mean-field coupling, with a
//!   fixed round budget and a convergence flag.
//!
//! Everything is deterministic: solves are pure sequential `f64`
//! programs, policies carry a [`StableHasher`] fingerprint, and identical
//! parameters always return the identical table.

pub mod fork;
pub mod solver;

use crate::adversary::{ForkAction, ForkEvent, ForkState, SelfishMining, Strategy};
use fairness_stats::cache::{MemoCache, StableHasher};
use fork::{full_index, ForkMdp, ACTIONS};
use std::sync::{Arc, OnceLock};

/// A solved optimal-withholding policy for one `(α, γ, depth)`.
#[derive(Debug, Clone)]
pub struct SolvedPolicy {
    /// Attacker share the policy was solved for.
    pub alpha: f64,
    /// Tie-break parameter.
    pub gamma: f64,
    /// Truncation depth of the fork MDP.
    pub depth: u32,
    /// Optimal relative revenue (the Dinkelbach fixed point).
    pub revenue: f64,
    /// `[attacker-settled, total-settled]` gains per discovery event.
    pub gains: [f64; 2],
    /// Relative revenue of the Eyal–Sirer policy *in the same truncated
    /// MDP* — the apples-to-apples baseline the optimal policy is
    /// guaranteed to dominate.
    pub eyal_sirer: f64,
    /// Dense action table over the full decision-state grid
    /// ([`fork::full_index`] layout; `255` marks invalid slots). Values
    /// are positions into [`fork::ACTIONS`].
    pub table: Vec<u8>,
    /// Dinkelbach rounds performed.
    pub rounds: u32,
    /// Whether every inner solve converged and the ratio reached its
    /// fixed point within the budget.
    pub converged: bool,
    /// Content fingerprint of `(α, γ, depth, table)` — stable across
    /// runs and machines; reported in `optimal_policy.csv`.
    pub fingerprint: u64,
}

/// Content-addressed key of one solve configuration.
#[must_use]
pub fn solve_key(alpha: f64, gamma: f64, depth: u32) -> u64 {
    let mut h = StableHasher::new();
    h.write_str("fork-mdp-optimal");
    h.write_f64(alpha);
    h.write_f64(gamma);
    h.write_u64(u64::from(depth));
    h.finish()
}

/// The process-wide solve cache: one entry per distinct `(α, γ, depth)`.
#[must_use]
pub fn solve_cache() -> &'static MemoCache<u64, Arc<SolvedPolicy>> {
    static CACHE: OnceLock<MemoCache<u64, Arc<SolvedPolicy>>> = OnceLock::new();
    CACHE.get_or_init(MemoCache::new)
}

/// Solves (or returns the cached) optimal withholding policy at
/// `(alpha, gamma, depth)`.
///
/// The Dinkelbach loop is seeded with the Eyal–Sirer policy's revenue in
/// the same truncated MDP, which makes the result provably at least that
/// baseline (each round is monotone in the ratio); the defensive
/// fall-back to the baseline policy below can only fire on numerical
/// pathology and preserves the guarantee exactly.
///
/// # Panics
/// Panics on parameters [`ForkMdp::new`] rejects.
#[must_use]
pub fn solve_optimal(alpha: f64, gamma: f64, depth: u32) -> Arc<SolvedPolicy> {
    let key = solve_key(alpha, gamma, depth);
    solve_cache().get_or_insert_with(&key, || {
        let mdp = ForkMdp::new(alpha, gamma, depth);
        let es_policy = mdp.induced_policy(&SelfishMining::new(gamma));
        let es = mdp.evaluate(&es_policy);
        let seed = es.revenue.max(alpha.min(1.0 - f64::EPSILON));
        let (policy, value, rounds, converged) = mdp.optimize(seed);
        let (policy, value) = if value.revenue >= es.revenue {
            (policy, value)
        } else {
            (es_policy, es)
        };
        let table = mdp.to_full_table(&policy);
        let mut h = StableHasher::new();
        h.write_str("fork-mdp-policy");
        h.write_f64(alpha);
        h.write_f64(gamma);
        h.write_u64(u64::from(depth));
        h.write_bytes(&table);
        Arc::new(SolvedPolicy {
            alpha,
            gamma,
            depth,
            revenue: value.revenue,
            gains: value.gains,
            eyal_sirer: es.revenue,
            table,
            rounds,
            converged: converged && es.converged,
            fingerprint: h.finish(),
        })
    })
}

/// Table lookup with the truncation closure as fall-back: outside the
/// solved grid the policy publishes a strictly longer private branch and
/// adopts otherwise — exactly the forced boundary behaviour the MDP was
/// closed with, so the Monte-Carlo fork driver realizes the truncated
/// chain verbatim.
fn table_decide(policy: &SolvedPolicy, state: ForkState, event: ForkEvent) -> ForkAction {
    let depth = u64::from(policy.depth);
    if state.private > depth {
        return if state.private > state.public {
            ForkAction::Publish
        } else {
            ForkAction::Adopt
        };
    }
    if state.public > depth {
        return ForkAction::Adopt;
    }
    let e = match event {
        ForkEvent::SelfBlock => 0,
        ForkEvent::PublicBlock => 1,
    };
    let slot = policy.table[full_index(
        state.private,
        state.public,
        state.published,
        e,
        policy.depth,
    )];
    if slot == 255 {
        // Unreachable under ForkMachine semantics; fail safe as honest.
        return match event {
            ForkEvent::SelfBlock => ForkAction::Publish,
            ForkEvent::PublicBlock => ForkAction::Adopt,
        };
    }
    ACTIONS[slot as usize]
}

/// The revenue-optimal withholding adversary: plays the value-iteration
/// policy for `(alpha, gamma, depth)` by table lookup.
///
/// Solving is lazy (first [`decide`](Strategy::decide)) and memoized
/// process-wide through [`solve_optimal`], so cloning per ensemble
/// repetition costs nothing and repeated sweeps reuse one solve.
///
/// `alpha` is the attacker share the policy is optimal *for*; pair it
/// with a matching share vector in the scenario, exactly as the
/// Eyal–Sirer closed form is evaluated at the attacker's α.
#[derive(Debug, Clone)]
pub struct OptimalWithholding {
    alpha: f64,
    gamma: f64,
    depth: u32,
    solved: OnceLock<Arc<SolvedPolicy>>,
}

impl OptimalWithholding {
    /// Creates the strategy (no solving happens until first use).
    ///
    /// # Panics
    /// Panics unless `alpha ∈ (0, 1)`, `gamma ∈ [0, 1]` and `depth ≥ 2`.
    #[must_use]
    pub fn new(alpha: f64, gamma: f64, depth: u32) -> Self {
        assert!(
            alpha > 0.0 && alpha < 1.0,
            "attacker share must be in (0, 1), got {alpha}"
        );
        assert!(
            (0.0..=1.0).contains(&gamma),
            "gamma must be in [0, 1], got {gamma}"
        );
        assert!(
            depth >= 2,
            "truncation depth must be at least 2, got {depth}"
        );
        Self {
            alpha,
            gamma,
            depth,
            solved: OnceLock::new(),
        }
    }

    /// The solved policy (solving and caching it on first call).
    #[must_use]
    pub fn solved(&self) -> &Arc<SolvedPolicy> {
        self.solved
            .get_or_init(|| solve_optimal(self.alpha, self.gamma, self.depth))
    }
}

impl Strategy for OptimalWithholding {
    fn name(&self) -> &'static str {
        "optimal-withholding"
    }

    fn decide(&self, state: ForkState, event: ForkEvent) -> ForkAction {
        table_decide(self.solved(), state, event)
    }

    fn gamma(&self) -> f64 {
        self.gamma
    }

    fn params(&self) -> Vec<f64> {
        vec![self.alpha, self.gamma, f64::from(self.depth)]
    }
}

// ---------------------------------------------------------------------------
// Two-adversary best-response search.
// ---------------------------------------------------------------------------

/// Configuration of a [`best_response_equilibrium`] search.
#[derive(Debug, Clone, Copy)]
pub struct EquilibriumConfig {
    /// Tie-break parameter both attackers play with.
    pub gamma: f64,
    /// Fork-MDP truncation depth of every inner solve.
    pub depth: u32,
    /// Best-response round budget (each round re-solves both attackers).
    pub max_rounds: u32,
}

impl Default for EquilibriumConfig {
    fn default() -> Self {
        Self {
            gamma: 0.0,
            depth: 24,
            max_rounds: 12,
        }
    }
}

/// Outcome of a two-adversary best-response search.
#[derive(Debug, Clone)]
pub struct Equilibrium {
    /// Raw attacker shares.
    pub alpha: [f64; 2],
    /// Effective shares at the fixed point (mean-field coupling).
    pub alpha_eff: [f64; 2],
    /// Each attacker's optimal relative revenue in her effective game.
    pub revenue: [f64; 2],
    /// Whether each attacker's equilibrium policy withholds at all
    /// (revenue strictly above her effective share).
    pub withholds: [bool; 2],
    /// Rounds performed before the fixed point (or the budget).
    pub rounds: u32,
    /// Whether a full round passed with neither policy changing.
    pub converged: bool,
    /// The equilibrium policies (index 0 ↔ `alpha[0]`).
    pub policies: [Arc<SolvedPolicy>; 2],
}

/// Quantization for effective shares: coarse enough that the iteration
/// reaches an exact fixed point (and re-solves hit the cache), fine
/// enough to be invisible in reported revenue.
fn quantize(alpha: f64) -> f64 {
    (alpha * 1e6).round() / 1e6
}

/// Locates equilibrium withholding between two strategic miners by
/// iterated best response under a *mean-field* coupling: each attacker
/// solves her single-agent fork MDP against the rest of the network,
/// whose block throughput is thinned by the opponent's withholding.
///
/// Concretely, if the opponent's current policy settles `g_tot(π_j)`
/// blocks per discovery event in her own game, attacker `i` faces the
/// effective share `α_i / (α_i + (1 − α_i) · g_tot(π_j))` — withholding
/// by the opponent slows the public chain, which *amplifies* the other
/// attacker. Both start from honest opponents (`g_tot = 1`); rounds
/// alternate re-solves until a full round changes neither effective
/// share (quantized at 1e−6) or the budget runs out. The coupling is an
/// approximation (the two fork races are not simulated jointly), chosen
/// so each inner solve stays an exact single-agent MDP.
///
/// # Panics
/// Panics unless both shares are positive and they sum below 1.
#[must_use]
pub fn best_response_equilibrium(alpha: [f64; 2], config: EquilibriumConfig) -> Equilibrium {
    assert!(
        alpha[0] > 0.0 && alpha[1] > 0.0,
        "attacker shares must be positive, got {alpha:?}"
    );
    assert!(
        alpha[0] + alpha[1] < 1.0,
        "attacker shares must sum below 1, got {alpha:?}"
    );
    let mut eff = [quantize(alpha[0]), quantize(alpha[1])];
    let mut throughput = [1.0f64; 2]; // honest opponents settle everything
    let mut solved: [Option<Arc<SolvedPolicy>>; 2] = [None, None];
    let mut rounds = 0;
    let mut converged = false;
    while rounds < config.max_rounds {
        rounds += 1;
        let mut changed = false;
        for i in 0..2 {
            let j = 1 - i;
            let target = quantize(alpha[i] / (alpha[i] + (1.0 - alpha[i]) * throughput[j]));
            if solved[i].is_some() && target == eff[i] {
                continue;
            }
            eff[i] = target;
            let s = solve_optimal(target, config.gamma, config.depth);
            throughput[i] = s.gains[1];
            solved[i] = Some(s);
            changed = true;
        }
        if !changed {
            converged = true;
            break;
        }
    }
    let policies = [
        solved[0].clone().expect("attacker 0 solved"),
        solved[1].clone().expect("attacker 1 solved"),
    ];
    let revenue = [policies[0].revenue, policies[1].revenue];
    Equilibrium {
        alpha,
        alpha_eff: eff,
        revenue,
        withholds: [revenue[0] > eff[0] + 1e-9, revenue[1] > eff[1] + 1e-9],
        rounds,
        converged,
        policies,
    }
}

/// A [`Strategy`] that plays attacker 0's side of the two-adversary
/// best-response fixed point for `(alpha, opponent)`: the equilibrium is
/// searched lazily on first use (memoized through the same solve cache)
/// and the resulting policy is played by table lookup.
#[derive(Debug, Clone)]
pub struct BestResponse {
    alpha: f64,
    opponent: f64,
    config: EquilibriumConfig,
    solved: OnceLock<Arc<Equilibrium>>,
}

impl BestResponse {
    /// Creates the strategy (no solving happens until first use).
    ///
    /// # Panics
    /// Panics unless both shares are positive, they sum below 1,
    /// `gamma ∈ [0, 1]`, `depth ≥ 2` and `max_rounds ≥ 1`.
    #[must_use]
    pub fn new(alpha: f64, opponent: f64, config: EquilibriumConfig) -> Self {
        assert!(
            alpha > 0.0 && opponent > 0.0 && alpha + opponent < 1.0,
            "attacker shares must be positive and sum below 1, got {alpha} + {opponent}"
        );
        assert!(
            (0.0..=1.0).contains(&config.gamma),
            "gamma must be in [0, 1], got {}",
            config.gamma
        );
        assert!(config.depth >= 2, "truncation depth must be at least 2");
        assert!(config.max_rounds >= 1, "need at least one round");
        Self {
            alpha,
            opponent,
            config,
            solved: OnceLock::new(),
        }
    }

    /// The equilibrium this strategy plays (searching on first call).
    #[must_use]
    pub fn equilibrium(&self) -> &Arc<Equilibrium> {
        self.solved.get_or_init(|| {
            Arc::new(best_response_equilibrium(
                [self.alpha, self.opponent],
                self.config,
            ))
        })
    }
}

impl Strategy for BestResponse {
    fn name(&self) -> &'static str {
        "best-response"
    }

    fn decide(&self, state: ForkState, event: ForkEvent) -> ForkAction {
        table_decide(&self.equilibrium().policies[0], state, event)
    }

    fn gamma(&self) -> f64 {
        self.config.gamma
    }

    fn params(&self) -> Vec<f64> {
        vec![
            self.alpha,
            self.opponent,
            self.config.gamma,
            f64::from(self.config.depth),
            f64::from(self.config.max_rounds),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::run_fork_game;
    use fairness_stats::rng::Xoshiro256StarStar;

    #[test]
    fn solve_cache_memoizes_by_content() {
        let before = solve_cache().misses();
        let a = solve_optimal(0.31, 0.25, 8);
        let b = solve_optimal(0.31, 0.25, 8);
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(
            solve_cache().misses(),
            before + 1,
            "second solve must be a cache hit"
        );
        let c = solve_optimal(0.31, 0.25, 9);
        assert_ne!(a.fingerprint, c.fingerprint, "depth must move the key");
    }

    #[test]
    fn optimal_dominates_eyal_sirer_in_the_same_mdp() {
        for (alpha, gamma) in [(0.2, 0.0), (0.35, 0.5), (0.45, 1.0)] {
            let s = solve_optimal(alpha, gamma, 12);
            assert!(s.converged, "α={alpha} γ={gamma} did not converge");
            assert!(
                s.revenue >= s.eyal_sirer - 1e-9,
                "α={alpha} γ={gamma}: optimal {} below ES {}",
                s.revenue,
                s.eyal_sirer
            );
            assert!(
                s.revenue >= alpha - 1e-6,
                "optimal play can always match honest mining"
            );
        }
    }

    #[test]
    fn below_threshold_the_optimal_policy_is_honest_revenue() {
        // γ = 0, α = 0.2 is far below the 1/3 threshold: no withholding
        // policy beats honest mining, so the optimum is exactly α.
        let s = solve_optimal(0.2, 0.0, 12);
        assert!((s.revenue - 0.2).abs() < 1e-6, "revenue {}", s.revenue);
    }

    #[test]
    fn strategy_plays_the_table_and_monte_carlo_agrees() {
        let strategy = OptimalWithholding::new(0.4, 0.5, 12);
        let mut rng = Xoshiro256StarStar::new(97);
        let mc = run_fork_game(&strategy, 0.4, 200_000, &mut rng).relative_revenue();
        let solved = strategy.solved().revenue;
        assert!(
            (mc - solved).abs() < 0.01,
            "monte carlo {mc} vs mdp {solved}"
        );
        assert!(solved > 0.4, "α=0.4 γ=0.5 withholding must beat honest");
    }

    #[test]
    fn degenerate_tiny_alpha_stays_finite() {
        // Satellite regression: an attacker that essentially never wins
        // must report 0-ish revenue, never NaN.
        let s = solve_optimal(1e-3, 0.5, 8);
        assert!(s.revenue.is_finite());
        assert!(s.revenue < 0.01, "revenue {}", s.revenue);
        let strategy = OptimalWithholding::new(1e-3, 0.5, 8);
        let mut rng = Xoshiro256StarStar::new(3);
        let tally = run_fork_game(&strategy, 1e-3, 2_000, &mut rng);
        assert!(tally.relative_revenue().is_finite());
    }

    #[test]
    fn best_response_converges_and_amplifies() {
        let eq = best_response_equilibrium(
            [0.35, 0.2],
            EquilibriumConfig {
                gamma: 0.0,
                depth: 8,
                max_rounds: 12,
            },
        );
        assert!(eq.converged, "small grid must reach a fixed point");
        // A withholding opponent slows the public chain: the effective
        // share can only grow.
        assert!(eq.alpha_eff[0] >= eq.alpha[0] - 1e-9);
        assert!(eq.alpha_eff[1] >= eq.alpha[1] - 1e-9);
        assert!(eq.withholds[0], "0.35 attacker withholds at γ=0");
        assert!(eq.revenue[0] > eq.revenue[1]);
    }

    #[test]
    fn best_response_strategy_is_playable() {
        let s = BestResponse::new(
            0.3,
            0.2,
            EquilibriumConfig {
                gamma: 0.0,
                depth: 8,
                max_rounds: 8,
            },
        );
        let mut rng = Xoshiro256StarStar::new(11);
        let tally = run_fork_game(&s, 0.3, 20_000, &mut rng);
        assert!(tally.relative_revenue().is_finite());
        assert_eq!(s.params().len(), 5);
    }
}
