//! The fork-state MDP: the exact decision process a withholding attacker
//! faces in [`crate::adversary::ForkMachine`], truncated at a depth
//! parameter so value iteration is finite.
//!
//! **States.** A *decision state* is the fork state the machine hands a
//! [`Strategy`] — `(private lead a, public length h, published flag, event)`
//! with `a, h ≤ depth` — reached immediately after a block discovery.
//! **Actions** are the three [`ForkAction`]s, offered in the fixed order
//! extend-private / publish / adopt (the deterministic tie-break order).
//! **Events** follow the model-level driver: the attacker finds the next
//! block with probability α; otherwise an honest block lands on the
//! attacker's published tip with probability γ during an equal-length race
//! (settling the race without a decision) or extends the public branch.
//!
//! **Truncation closure.** At the boundary the process is *forced* rather
//! than cut: a self block that would push the lead past `depth`
//! auto-publishes (settling the whole private branch — it is strictly
//! longer), and an honest block past `depth` auto-adopts. Every policy
//! therefore keeps settling blocks, which makes the chain unichain with a
//! strictly positive total-settled gain — exactly what the ratio objective
//! in [`super::solver::solve_ratio`] needs. [`OptimalWithholding`]'s
//! out-of-table fallback implements the same closure, so the Monte-Carlo
//! driver realizes precisely this truncated chain.
//!
//! [`OptimalWithholding`]: super::OptimalWithholding

use super::solver::{solve_ratio, Mdp, MdpBuilder, Solution, Transition, ValueIteration};
use crate::adversary::{ForkAction, ForkEvent, ForkState, Strategy};

/// The three fork actions in listing (= tie-break) order.
pub const ACTIONS: [ForkAction; 3] = [
    ForkAction::ExtendPrivate,
    ForkAction::Publish,
    ForkAction::Adopt,
];

/// Position of `action` in [`ACTIONS`].
#[must_use]
pub fn action_position(action: ForkAction) -> u8 {
    match action {
        ForkAction::ExtendPrivate => 0,
        ForkAction::Publish => 1,
        ForkAction::Adopt => 2,
    }
}

/// Dense index of decision state `(a, h, published, event)` in the full
/// `(depth+1)² × 2 × 2` grid (including never-reached combinations, so
/// lookup is pure arithmetic). `event` is 0 for [`ForkEvent::SelfBlock`],
/// 1 for [`ForkEvent::PublicBlock`].
#[must_use]
pub fn full_index(a: u64, h: u64, published: bool, event: usize, depth: u32) -> usize {
    let side = depth as u64 + 1;
    debug_assert!(a < side && h < side && event < 2);
    (((a * side + h) * 2 + u64::from(published)) * 2) as usize + event
}

/// Number of slots in the full decision-state grid at `depth`.
#[must_use]
pub fn full_grid_len(depth: u32) -> usize {
    let side = depth as usize + 1;
    side * side * 4
}

fn event_code(event: ForkEvent) -> usize {
    match event {
        ForkEvent::SelfBlock => 0,
        ForkEvent::PublicBlock => 1,
    }
}

/// A stable fork configuration between block discoveries.
#[derive(Debug, Clone, Copy)]
struct Stable {
    a: u64,
    h: u64,
    published: bool,
}

/// Value of a fixed policy on the fork MDP.
#[derive(Debug, Clone, Copy)]
pub struct PolicyValue {
    /// Relative revenue: attacker-settled over total-settled gain.
    pub revenue: f64,
    /// `[attacker-settled, total-settled]` blocks per discovery event.
    pub gains: [f64; 2],
    /// Whether both channel evaluations met the stopping rule.
    pub converged: bool,
}

/// The fork-state MDP at one `(α, γ, depth)` configuration.
#[derive(Debug)]
pub struct ForkMdp {
    alpha: f64,
    gamma: f64,
    depth: u32,
    mdp: Mdp,
    /// Full-grid slot → compact state index (`-1` for invalid slots).
    index: Vec<i32>,
    /// Compact state index → `(a, h, published, event)`.
    states: Vec<(u64, u64, bool, usize)>,
}

impl ForkMdp {
    /// Builds the truncated fork MDP.
    ///
    /// # Panics
    /// Panics unless `alpha ∈ (0, 1)`, `gamma ∈ [0, 1]` and `depth ≥ 2`.
    #[must_use]
    pub fn new(alpha: f64, gamma: f64, depth: u32) -> Self {
        assert!(
            alpha > 0.0 && alpha < 1.0,
            "attacker share must be in (0, 1), got {alpha}"
        );
        assert!(
            (0.0..=1.0).contains(&gamma),
            "gamma must be in [0, 1], got {gamma}"
        );
        assert!(
            depth >= 2,
            "truncation depth must be at least 2, got {depth}"
        );

        // Enumerate valid decision states: a self event implies a ≥ 1, a
        // public event implies h ≥ 1.
        let mut index = vec![-1i32; full_grid_len(depth)];
        let mut states = Vec::new();
        for a in 0..=u64::from(depth) {
            for h in 0..=u64::from(depth) {
                for published in [false, true] {
                    for event in 0..2usize {
                        let valid = if event == 0 { a >= 1 } else { h >= 1 };
                        if valid {
                            index[full_index(a, h, published, event, depth)] = states.len() as i32;
                            states.push((a, h, published, event));
                        }
                    }
                }
            }
        }

        let mut builder = MdpBuilder::new(states.len());
        let this = ForkMdpCtx {
            alpha,
            gamma,
            depth,
            index: &index,
        };
        for (s, &(a, h, published, _event)) in states.iter().enumerate() {
            for (pos, &action) in ACTIONS.iter().enumerate() {
                let (reward, stable) = this.apply(a, h, published, action);
                let arcs = this.resolve(stable, reward);
                builder.add_action(s, pos as u8, &arcs);
            }
        }
        Self {
            alpha,
            gamma,
            depth,
            mdp: builder.build(),
            index,
            states,
        }
    }

    /// The attacker share the MDP was built for.
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The tie-break parameter the MDP was built for.
    #[must_use]
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// The truncation depth.
    #[must_use]
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// The underlying generic MDP.
    #[must_use]
    pub fn mdp(&self) -> &Mdp {
        &self.mdp
    }

    /// Number of decision states.
    #[must_use]
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// Compact index of the decision state a strategy would be consulted
    /// at, or `None` when the fork state lies outside the truncation.
    #[must_use]
    pub fn lookup(&self, state: ForkState, event: ForkEvent) -> Option<usize> {
        if state.private > u64::from(self.depth) || state.public > u64::from(self.depth) {
            return None;
        }
        let slot = full_index(
            state.private,
            state.public,
            state.published,
            event_code(event),
            self.depth,
        );
        let i = self.index[slot];
        (i >= 0).then_some(i as usize)
    }

    /// The policy a [`Strategy`] induces on the decision states, as
    /// per-state action positions — restricting the MDP to exactly the
    /// strategy's play.
    #[must_use]
    pub fn induced_policy<S: Strategy + ?Sized>(&self, strategy: &S) -> Vec<u8> {
        self.states
            .iter()
            .map(|&(a, h, published, event)| {
                let state = ForkState {
                    private: a,
                    public: h,
                    published,
                };
                let event = if event == 0 {
                    ForkEvent::SelfBlock
                } else {
                    ForkEvent::PublicBlock
                };
                action_position(strategy.decide(state, event))
            })
            .collect()
    }

    /// Evaluates a fixed policy's relative revenue (per-channel gains via
    /// relative value iteration).
    #[must_use]
    pub fn evaluate(&self, policy: &[u8]) -> PolicyValue {
        let vi = ValueIteration::default();
        let mut v = Vec::new();
        let att = vi.evaluate(&self.mdp, policy, [1.0, 0.0], &mut v);
        let mut v = Vec::new();
        let tot = vi.evaluate(&self.mdp, policy, [0.0, 1.0], &mut v);
        Self::value_of(&att, &tot)
    }

    fn value_of(att: &Solution, tot: &Solution) -> PolicyValue {
        // The truncation closure guarantees a positive settle rate; the
        // guard keeps a degenerate evaluation finite rather than NaN.
        let revenue = if tot.gain > 0.0 {
            att.gain / tot.gain
        } else {
            0.0
        };
        PolicyValue {
            revenue,
            gains: [att.gain, tot.gain],
            converged: att.converged && tot.converged,
        }
    }

    /// Solves for the revenue-optimal policy by Dinkelbach iteration,
    /// seeded at `seed_ratio` (seeding with a known policy's revenue
    /// guarantees the result is at least that revenue). Returns the
    /// policy (action positions), its value, and convergence metadata.
    #[must_use]
    pub fn optimize(&self, seed_ratio: f64) -> (Vec<u8>, PolicyValue, u32, bool) {
        let sol = solve_ratio(&self.mdp, &ValueIteration::default(), seed_ratio, 60);
        let value = PolicyValue {
            revenue: sol.ratio,
            gains: sol.gains,
            converged: sol.converged,
        };
        (sol.policy, value, sol.rounds, sol.converged)
    }

    /// Expands a compact per-state policy into the full dense grid
    /// (`255` marks invalid slots), the layout [`super::SolvedPolicy`]
    /// stores for arithmetic lookup.
    #[must_use]
    pub fn to_full_table(&self, policy: &[u8]) -> Vec<u8> {
        let mut table = vec![255u8; full_grid_len(self.depth)];
        for (s, &(a, h, published, event)) in self.states.iter().enumerate() {
            table[full_index(a, h, published, event, self.depth)] = policy[s];
        }
        table
    }
}

/// Borrowed context for transition construction.
struct ForkMdpCtx<'a> {
    alpha: f64,
    gamma: f64,
    depth: u32,
    index: &'a [i32],
}

impl ForkMdpCtx<'_> {
    fn compact(&self, a: u64, h: u64, published: bool, event: usize) -> usize {
        let i = self.index[full_index(a, h, published, event, self.depth)];
        debug_assert!(
            i >= 0,
            "invalid decision state ({a}, {h}, {published}, {event})"
        );
        i as usize
    }

    /// Applies an action to the post-event fork state, mirroring
    /// `ForkMachine::apply` exactly: publish with a longer private branch
    /// settles it all, at equal length it opens (or keeps) the tip race,
    /// and a shorter publish forfeits like adopt. Adopt settles the
    /// public branch (all honest) and abandons the private one. Returns
    /// the settled `[attacker, total]` reward and the resulting stable
    /// configuration.
    fn apply(&self, a: u64, h: u64, published: bool, action: ForkAction) -> ([f64; 2], Stable) {
        match action {
            ForkAction::ExtendPrivate => ([0.0, 0.0], Stable { a, h, published }),
            ForkAction::Adopt => (
                [0.0, h as f64],
                Stable {
                    a: 0,
                    h: 0,
                    published: false,
                },
            ),
            ForkAction::Publish => {
                if a > h {
                    (
                        [a as f64, a as f64],
                        Stable {
                            a: 0,
                            h: 0,
                            published: false,
                        },
                    )
                } else if a == h && a > 0 {
                    (
                        [0.0, 0.0],
                        Stable {
                            a,
                            h,
                            published: true,
                        },
                    )
                } else if a < h {
                    // Publishing a shorter branch forfeits — same as adopt.
                    (
                        [0.0, h as f64],
                        Stable {
                            a: 0,
                            h: 0,
                            published: false,
                        },
                    )
                } else {
                    // a == h == 0: nothing to publish.
                    ([0.0, 0.0], Stable { a, h, published })
                }
            }
        }
    }

    /// Enumerates the block-discovery outcomes from a stable
    /// configuration, carrying `base` (the acting settle reward) on every
    /// arc. Forced boundary settles and the γ race resolution pass
    /// through the empty fork `(0, 0)` and on to its next decision state,
    /// so every arc ends at a decision state.
    fn resolve(&self, s: Stable, base: [f64; 2]) -> Vec<Transition> {
        let mut arcs = Vec::with_capacity(6);
        let alpha = self.alpha;
        let tie = s.published && s.a > 0 && s.a == s.h;
        let race = if tie { (1.0 - alpha) * self.gamma } else { 0.0 };

        // Attacker finds the next block.
        let a2 = s.a + 1;
        if a2 > u64::from(self.depth) {
            // Forced publish: the private branch (a2 > h) settles whole.
            let reward = [base[0] + a2 as f64, base[1] + a2 as f64];
            self.restart(alpha, reward, &mut arcs);
        } else {
            arcs.push(Transition {
                next: self.compact(a2, s.h, s.published, 0),
                prob: alpha,
                reward: base,
            });
        }

        // During an equal-length race: honest power on the attacker's tip
        // settles her branch plus the new honest block, no decision.
        if race > 0.0 {
            let reward = [base[0] + s.a as f64, base[1] + s.a as f64 + 1.0];
            self.restart(race, reward, &mut arcs);
        }

        // An honest block extends the public branch.
        let public = (1.0 - alpha) - race;
        let h2 = s.h + 1;
        if h2 > u64::from(self.depth) {
            // Forced adopt: the public branch settles, private forfeits.
            let reward = [base[0], base[1] + h2 as f64];
            self.restart(public, reward, &mut arcs);
        } else {
            arcs.push(Transition {
                next: self.compact(s.a, h2, s.published, 1),
                prob: public,
                reward: base,
            });
        }
        arcs
    }

    /// Outcomes from the empty fork `(0, 0, unpublished)`: the next block
    /// is the attacker's (→ decide at `(1, 0)`) or honest (→ decide at
    /// `(0, 1)`), scaled by `prob` and carrying `reward`.
    fn restart(&self, prob: f64, reward: [f64; 2], arcs: &mut Vec<Transition>) {
        arcs.push(Transition {
            next: self.compact(1, 0, false, 0),
            prob: prob * self.alpha,
            reward,
        });
        arcs.push(Transition {
            next: self.compact(0, 1, false, 1),
            prob: prob * (1.0 - self.alpha),
            reward,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{Honest, SelfishMining};
    use fairness_stats::dist::selfish_mining_relative_revenue;

    #[test]
    fn state_enumeration_round_trips() {
        let m = ForkMdp::new(0.3, 0.5, 6);
        for (a, h, p, e) in [(1, 0, false, 0), (3, 4, true, 1), (6, 6, true, 0)] {
            let state = ForkState {
                private: a,
                public: h,
                published: p,
            };
            let event = if e == 0 {
                ForkEvent::SelfBlock
            } else {
                ForkEvent::PublicBlock
            };
            let i = m.lookup(state, event).expect("valid state");
            assert_eq!(m.states[i], (a, h, p, e));
        }
        // Out-of-truncation and invalid states have no index.
        assert_eq!(
            m.lookup(
                ForkState {
                    private: 7,
                    public: 0,
                    published: false
                },
                ForkEvent::SelfBlock
            ),
            None
        );
        assert_eq!(
            m.lookup(
                ForkState {
                    private: 0,
                    public: 0,
                    published: false
                },
                ForkEvent::SelfBlock
            ),
            None,
            "a self event implies at least one private block"
        );
    }

    #[test]
    fn honest_policy_revenue_is_alpha() {
        // Honest play settles every block as it arrives: relative revenue
        // must equal α exactly (up to solver epsilon).
        for alpha in [0.1, 0.3, 0.45] {
            let m = ForkMdp::new(alpha, 0.0, 8);
            let value = m.evaluate(&m.induced_policy(&Honest));
            assert!(value.converged);
            assert!(
                (value.revenue - alpha).abs() < 1e-8,
                "α={alpha}: honest revenue {}",
                value.revenue
            );
            assert!(
                (value.gains[1] - 1.0).abs() < 1e-8,
                "honest settles every block"
            );
        }
    }

    #[test]
    fn eyal_sirer_policy_matches_closed_form_spot_check() {
        // Full-grid coverage lives in tests/mdp_properties.rs; this pins
        // one well-known point: α = 1/3, γ = 0 is the break-even point.
        let m = ForkMdp::new(1.0 / 3.0, 0.0, 32);
        let value = m.evaluate(&m.induced_policy(&SelfishMining::new(0.0)));
        let exact = selfish_mining_relative_revenue(1.0 / 3.0, 0.0);
        assert!(
            (value.revenue - exact).abs() < 1e-3,
            "mdp {} vs closed form {exact}",
            value.revenue
        );
    }

    #[test]
    fn optimize_beats_the_seeded_policy() {
        let m = ForkMdp::new(0.45, 0.0, 16);
        let es = m.evaluate(&m.induced_policy(&SelfishMining::new(0.0)));
        let (_, value, _, converged) = m.optimize(es.revenue);
        assert!(converged);
        assert!(
            value.revenue >= es.revenue - 1e-9,
            "optimal {} below Eyal–Sirer {}",
            value.revenue,
            es.revenue
        );
    }

    #[test]
    fn full_table_round_trips() {
        let m = ForkMdp::new(0.3, 0.5, 4);
        let policy = m.induced_policy(&SelfishMining::new(0.5));
        let table = m.to_full_table(&policy);
        for (s, &(a, h, p, e)) in m.states.iter().enumerate() {
            assert_eq!(table[full_index(a, h, p, e, 4)], policy[s]);
        }
        let valid = table.iter().filter(|&&x| x != 255).count();
        assert_eq!(valid, m.num_states());
    }
}
