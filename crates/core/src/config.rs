//! Serializable experiment configuration.
//!
//! One declarative description covering every game in the paper, so the
//! bench harness (and downstream users) can specify experiments as data.

use crate::fairness::EpsilonDelta;
use crate::protocols::{Algorand, CPos, Eos, FslPos, MlPos, Neo, Pow, SlPos};
use crate::withholding::WithholdingSchedule;
use serde::{Deserialize, Serialize};

/// Protocol selector plus parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ProtocolConfig {
    /// PoW with block reward `w` (hash shares = initial shares).
    Pow {
        /// Block reward, normalized.
        reward: f64,
    },
    /// ML-PoS with block reward `w`.
    MlPos {
        /// Block reward, normalized.
        reward: f64,
    },
    /// SL-PoS with block reward `w`.
    SlPos {
        /// Block reward, normalized.
        reward: f64,
    },
    /// FSL-PoS with block reward `w`.
    FslPos {
        /// Block reward, normalized.
        reward: f64,
    },
    /// C-PoS with proposer reward `w`, inflation `v`, `P` shards.
    CPos {
        /// Proposer reward per epoch.
        proposer_reward: f64,
        /// Inflation (attester) reward per epoch.
        inflation_reward: f64,
        /// Shards per epoch.
        shards: u32,
    },
    /// NEO-style non-compounding PoS.
    Neo {
        /// Block reward (in the separate asset).
        reward: f64,
    },
    /// Algorand-style inflation-only rewards.
    Algorand {
        /// Inflation per step.
        inflation: f64,
    },
    /// EOS-style equal proposer pay plus proportional inflation.
    Eos {
        /// Proposer budget per round.
        proposer_reward: f64,
        /// Inflation budget per round.
        inflation_reward: f64,
    },
}

impl ProtocolConfig {
    /// Protocol display name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            ProtocolConfig::Pow { .. } => "PoW",
            ProtocolConfig::MlPos { .. } => "ML-PoS",
            ProtocolConfig::SlPos { .. } => "SL-PoS",
            ProtocolConfig::FslPos { .. } => "FSL-PoS",
            ProtocolConfig::CPos { .. } => "C-PoS",
            ProtocolConfig::Neo { .. } => "NEO",
            ProtocolConfig::Algorand { .. } => "Algorand",
            ProtocolConfig::Eos { .. } => "EOS",
        }
    }
}

/// A fully specified experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GameConfig {
    /// Protocol and parameters.
    pub protocol: ProtocolConfig,
    /// Initial resource shares (miner 0 is tracked).
    pub initial_shares: Vec<f64>,
    /// Checkpoints for statistics.
    pub checkpoints: Vec<u64>,
    /// Monte-Carlo repetitions.
    pub repetitions: usize,
    /// Master seed.
    pub seed: u64,
    /// Fairness parameters.
    pub eps_delta: EpsilonDelta,
    /// Optional withholding schedule.
    pub withholding: Option<WithholdingSchedule>,
}

impl GameConfig {
    /// Runs the configured ensemble, dispatching on the protocol.
    #[must_use]
    pub fn run(&self) -> crate::montecarlo::EnsembleSummary {
        let ec = crate::montecarlo::EnsembleConfig {
            initial_shares: self.initial_shares.clone(),
            checkpoints: self.checkpoints.clone(),
            repetitions: self.repetitions,
            seed: self.seed,
            eps_delta: self.eps_delta,
            withholding: self.withholding,
        };
        match &self.protocol {
            ProtocolConfig::Pow { reward } => {
                crate::montecarlo::run_ensemble(&Pow::new(&self.initial_shares, *reward), &ec)
            }
            ProtocolConfig::MlPos { reward } => {
                crate::montecarlo::run_ensemble(&MlPos::new(*reward), &ec)
            }
            ProtocolConfig::SlPos { reward } => {
                crate::montecarlo::run_ensemble(&SlPos::new(*reward), &ec)
            }
            ProtocolConfig::FslPos { reward } => {
                crate::montecarlo::run_ensemble(&FslPos::new(*reward), &ec)
            }
            ProtocolConfig::CPos {
                proposer_reward,
                inflation_reward,
                shards,
            } => crate::montecarlo::run_ensemble(
                &CPos::new(*proposer_reward, *inflation_reward, *shards),
                &ec,
            ),
            ProtocolConfig::Neo { reward } => {
                crate::montecarlo::run_ensemble(&Neo::new(&self.initial_shares, *reward), &ec)
            }
            ProtocolConfig::Algorand { inflation } => {
                crate::montecarlo::run_ensemble(&Algorand::new(*inflation), &ec)
            }
            ProtocolConfig::Eos {
                proposer_reward,
                inflation_reward,
            } => {
                crate::montecarlo::run_ensemble(&Eos::new(*proposer_reward, *inflation_reward), &ec)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config(protocol: ProtocolConfig) -> GameConfig {
        GameConfig {
            protocol,
            initial_shares: vec![0.2, 0.8],
            checkpoints: vec![50, 100],
            repetitions: 200,
            seed: 1,
            eps_delta: EpsilonDelta::default(),
            withholding: None,
        }
    }

    #[test]
    fn dispatch_runs_every_protocol() {
        let protocols = vec![
            ProtocolConfig::Pow { reward: 0.01 },
            ProtocolConfig::MlPos { reward: 0.01 },
            ProtocolConfig::SlPos { reward: 0.01 },
            ProtocolConfig::FslPos { reward: 0.01 },
            ProtocolConfig::CPos {
                proposer_reward: 0.01,
                inflation_reward: 0.1,
                shards: 32,
            },
            ProtocolConfig::Neo { reward: 0.01 },
            ProtocolConfig::Algorand { inflation: 0.1 },
            ProtocolConfig::Eos {
                proposer_reward: 0.01,
                inflation_reward: 0.1,
            },
        ];
        for p in protocols {
            let name = p.name();
            let summary = quick_config(p).run();
            assert_eq!(summary.protocol, name);
            assert_eq!(summary.points.len(), 2);
        }
    }

    #[test]
    fn algorand_absolutely_fair() {
        let summary = quick_config(ProtocolConfig::Algorand { inflation: 0.1 }).run();
        let last = summary.final_point();
        assert!((last.mean - 0.2).abs() < 1e-12);
        assert_eq!(last.unfair_probability, 0.0);
        assert!((last.p95 - last.p05).abs() < 1e-12);
    }

    #[test]
    fn eos_expectationally_unfair() {
        // Constant proposer pay: miner A with 20% stake earns
        // w/2 + v·s_A/Σs per step — strictly more than 20% of (w + v) at
        // every step, and the excess compounds into her stake, so the mean
        // reward fraction sits clearly above the fair share.
        let summary = quick_config(ProtocolConfig::Eos {
            proposer_reward: 0.01,
            inflation_reward: 0.1,
        })
        .run();
        let last = summary.final_point();
        let static_floor = (0.005 + 0.1 * 0.2) / 0.11; // ≈ 0.227, pre-compounding
        assert!(
            last.mean > static_floor - 1e-9,
            "{} should exceed the static floor {static_floor}",
            last.mean
        );
        assert!(last.mean > 0.2 + 0.01, "small delegate over-paid");
    }

    #[test]
    fn configs_are_serializable() {
        // Compile-time check that GameConfig satisfies the serde bounds.
        fn assert_serde<T: serde::Serialize + serde::de::DeserializeOwned>() {}
        assert_serde::<GameConfig>();
    }
}
