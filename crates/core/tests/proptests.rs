//! Property-based tests for the fairness core: game invariants, theorem
//! consistency and protocol laws over arbitrary parameters.

use fairness_core::prelude::*;
use fairness_core::protocol::StepRewards;
use proptest::prelude::*;

proptest! {
    // ---------------- protocol step laws ----------------

    #[test]
    fn every_protocol_allocates_exactly_its_step_reward(
        shares in prop::collection::vec(0.05f64..1.0, 2..6),
        seed in any::<u64>(),
    ) {
        let total: f64 = shares.iter().sum();
        let stakes: Vec<f64> = shares.iter().map(|s| s / total).collect();
        let mut rng = Xoshiro256StarStar::new(seed);

        let protocols: Vec<Box<dyn IncentiveProtocol>> = vec![
            Box::new(Pow::new(&stakes, 0.01)),
            Box::new(MlPos::new(0.01)),
            Box::new(SlPos::new(0.01)),
            Box::new(FslPos::new(0.01)),
            Box::new(CPos::new(0.01, 0.1, 8)),
            Box::new(Neo::new(&stakes, 0.01)),
            Box::new(Algorand::new(0.1)),
            Box::new(Eos::new(0.01, 0.1)),
        ];
        for p in &protocols {
            let rewards = p.step(&stakes, 0, &mut rng);
            let issued: f64 = match &rewards {
                StepRewards::Winner(w) => {
                    prop_assert!(*w < stakes.len(), "{} produced invalid winner", p.name());
                    p.reward_per_step()
                }
                StepRewards::Split(v) => {
                    prop_assert_eq!(v.len(), stakes.len());
                    prop_assert!(v.iter().all(|&r| r >= -1e-12));
                    v.iter().sum()
                }
            };
            prop_assert!(
                (issued - p.reward_per_step()).abs() < 1e-9,
                "{} issued {} != {}",
                p.name(), issued, p.reward_per_step()
            );
        }
    }

    #[test]
    fn lambda_is_always_a_distribution(
        a in 0.05f64..0.95,
        w in 0.001f64..0.1,
        n in 1u64..200,
        seed in any::<u64>(),
    ) {
        let mut rng = Xoshiro256StarStar::new(seed);
        macro_rules! check_game {
            ($protocol:expr) => {{
                let mut game = MiningGame::new($protocol, &two_miner(a));
                game.run(n, &mut rng);
                let l0 = game.lambda(0);
                let l1 = game.lambda(1);
                prop_assert!((0.0..=1.0).contains(&l0));
                prop_assert!((l0 + l1 - 1.0).abs() < 1e-9);
            }};
        }
        check_game!(MlPos::new(w));
        check_game!(SlPos::new(w));
        check_game!(FslPos::new(w));
    }

    // ---------------- theorem consistency ----------------

    #[test]
    fn pow_sufficient_n_passes_exact_check(a_pct in 10u32..60, eps_pct in 5u32..30) {
        // The Hoeffding-derived n of Theorem 4.2 must make the *exact*
        // binomial unfair probability ≤ δ too (the bound is conservative).
        let a = f64::from(a_pct) / 100.0;
        let eps = f64::from(eps_pct) / 100.0;
        let ed = EpsilonDelta::new(eps, 0.1);
        let n = theory::pow::sufficient_n(a, ed);
        let exact = theory::pow::exact_unfair_probability(n, a, eps);
        prop_assert!(exact <= ed.delta + 1e-9, "exact {} > delta at n={}", exact, n);
    }

    #[test]
    fn mlpos_threshold_monotone_in_share(a1 in 0.05f64..0.5, a2 in 0.05f64..0.5) {
        let ed = EpsilonDelta::default();
        let (lo, hi) = if a1 <= a2 { (a1, a2) } else { (a2, a1) };
        prop_assert!(
            theory::mlpos::threshold(lo, ed) <= theory::mlpos::threshold(hi, ed) + 1e-15
        );
    }

    #[test]
    fn mlpos_limit_unfairness_monotone_in_w(a in 0.1f64..0.5, w1 in 0.001f64..0.2, w2 in 0.001f64..0.2) {
        let (lo, hi) = if w1 <= w2 { (w1, w2) } else { (w2, w1) };
        let u_lo = theory::mlpos::limit_unfair_probability(a, lo, 0.1);
        let u_hi = theory::mlpos::limit_unfair_probability(a, hi, 0.1);
        prop_assert!(u_lo <= u_hi + 1e-9, "w={lo}:{u_lo} vs w={hi}:{u_hi}");
    }

    #[test]
    fn slpos_win_prob_below_diagonal_for_minority(z in 0.001f64..0.5) {
        let p = theory::slpos::win_probability_two_miner(z);
        prop_assert!(p <= z + 1e-12, "minority should never be over-paid: {p} > {z}");
        // And the complementary majority is over-paid.
        let q = theory::slpos::win_probability_two_miner(1.0 - z);
        prop_assert!(q >= 1.0 - z - 1e-12);
    }

    #[test]
    fn lemma_6_1_largest_miner_always_advantaged(
        raw in prop::collection::vec(0.01f64..1.0, 2..8),
    ) {
        let total: f64 = raw.iter().sum();
        let stakes: Vec<f64> = raw.iter().map(|s| s / total).collect();
        let probs = theory::slpos::win_probabilities(&stakes);
        let (imax, &smax) = stakes
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        let (imin, &smin) = stakes
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        prop_assert!(probs[imax] >= smax - 1e-9, "largest under-paid");
        prop_assert!(probs[imin] <= smin + 1e-9, "smallest over-paid");
    }

    #[test]
    fn cpos_bound_dominates_mlpos_bound(n in 100u64..10_000, w_ppm in 100u64..50_000) {
        // With any inflation or sharding, the C-PoS Azuma bound is at most
        // the ML-PoS one (v = 0, P = 1 case).
        let w = w_ppm as f64 / 1e6;
        let ml = theory::mlpos::azuma_unfair_bound(n, w, 0.2, 0.1);
        let cp = theory::cpos::azuma_unfair_bound(n, w, 0.1, 32, 0.2, 0.1);
        prop_assert!(cp <= ml + 1e-12);
    }

    // ---------------- withholding ----------------

    #[test]
    fn withholding_schedule_effective_points(period in 1u64..10_000, issued in 1u64..1_000_000) {
        let s = WithholdingSchedule::every(period);
        let eff = s.effective_at(issued);
        prop_assert!(eff >= issued);
        prop_assert!(eff - issued < period);
        prop_assert!(eff.is_multiple_of(period));
    }

    // ---------------- ensemble statistics ----------------

    #[test]
    fn band_points_are_ordered(seed in any::<u64>()) {
        let config = EnsembleConfig {
            checkpoints: vec![20, 60],
            ..EnsembleConfig::paper_default(0.3, 60, 80, seed)
        };
        let summary = run_ensemble(&MlPos::new(0.02), &config);
        for p in &summary.points {
            prop_assert!(p.p05 <= p.mean + 1e-12);
            prop_assert!(p.mean <= p.p95 + 1e-12);
            prop_assert!((0.0..=1.0).contains(&p.unfair_probability));
        }
    }
}
