//! Property-based tests for the fairness core: game invariants, theorem
//! consistency and protocol laws over arbitrary parameters.

use fairness_core::prelude::*;
use fairness_core::protocol::StepRewards;
use proptest::prelude::*;

proptest! {
    // ---------------- protocol step laws ----------------

    #[test]
    fn every_protocol_allocates_exactly_its_step_reward(
        shares in prop::collection::vec(0.05f64..1.0, 2..6),
        seed in any::<u64>(),
    ) {
        let total: f64 = shares.iter().sum();
        let stakes: Vec<f64> = shares.iter().map(|s| s / total).collect();
        let mut rng = Xoshiro256StarStar::new(seed);

        let protocols: Vec<Box<dyn IncentiveProtocol>> = vec![
            Box::new(Pow::new(&stakes, 0.01)),
            Box::new(MlPos::new(0.01)),
            Box::new(SlPos::new(0.01)),
            Box::new(FslPos::new(0.01)),
            Box::new(CPos::new(0.01, 0.1, 8)),
            Box::new(Neo::new(&stakes, 0.01)),
            Box::new(Algorand::new(0.1)),
            Box::new(Eos::new(0.01, 0.1)),
        ];
        for p in &protocols {
            let rewards = p.step(&stakes, 0, &mut rng);
            let issued: f64 = match &rewards {
                StepRewards::Winner(w) => {
                    prop_assert!(*w < stakes.len(), "{} produced invalid winner", p.name());
                    p.reward_per_step()
                }
                StepRewards::Split(v) => {
                    prop_assert_eq!(v.len(), stakes.len());
                    prop_assert!(v.iter().all(|&r| r >= -1e-12));
                    v.iter().sum()
                }
            };
            prop_assert!(
                (issued - p.reward_per_step()).abs() < 1e-9,
                "{} issued {} != {}",
                p.name(), issued, p.reward_per_step()
            );
        }
    }

    #[test]
    fn lambda_is_always_a_distribution(
        a in 0.05f64..0.95,
        w in 0.001f64..0.1,
        n in 1u64..200,
        seed in any::<u64>(),
    ) {
        let mut rng = Xoshiro256StarStar::new(seed);
        macro_rules! check_game {
            ($protocol:expr) => {{
                let mut game = MiningGame::new($protocol, &two_miner(a));
                game.run(n, &mut rng);
                let l0 = game.lambda(0);
                let l1 = game.lambda(1);
                prop_assert!((0.0..=1.0).contains(&l0));
                prop_assert!((l0 + l1 - 1.0).abs() < 1e-9);
            }};
        }
        check_game!(MlPos::new(w));
        check_game!(SlPos::new(w));
        check_game!(FslPos::new(w));
    }

    // ---------------- theorem consistency ----------------

    #[test]
    fn pow_sufficient_n_passes_exact_check(a_pct in 10u32..60, eps_pct in 5u32..30) {
        // The Hoeffding-derived n of Theorem 4.2 must make the *exact*
        // binomial unfair probability ≤ δ too (the bound is conservative).
        let a = f64::from(a_pct) / 100.0;
        let eps = f64::from(eps_pct) / 100.0;
        let ed = EpsilonDelta::new(eps, 0.1);
        let n = theory::pow::sufficient_n(a, ed);
        let exact = theory::pow::exact_unfair_probability(n, a, eps);
        prop_assert!(exact <= ed.delta + 1e-9, "exact {} > delta at n={}", exact, n);
    }

    #[test]
    fn mlpos_threshold_monotone_in_share(a1 in 0.05f64..0.5, a2 in 0.05f64..0.5) {
        let ed = EpsilonDelta::default();
        let (lo, hi) = if a1 <= a2 { (a1, a2) } else { (a2, a1) };
        prop_assert!(
            theory::mlpos::threshold(lo, ed) <= theory::mlpos::threshold(hi, ed) + 1e-15
        );
    }

    #[test]
    fn mlpos_limit_unfairness_monotone_in_w(a in 0.1f64..0.5, w1 in 0.001f64..0.2, w2 in 0.001f64..0.2) {
        let (lo, hi) = if w1 <= w2 { (w1, w2) } else { (w2, w1) };
        let u_lo = theory::mlpos::limit_unfair_probability(a, lo, 0.1);
        let u_hi = theory::mlpos::limit_unfair_probability(a, hi, 0.1);
        prop_assert!(u_lo <= u_hi + 1e-9, "w={lo}:{u_lo} vs w={hi}:{u_hi}");
    }

    #[test]
    fn slpos_win_prob_below_diagonal_for_minority(z in 0.001f64..0.5) {
        let p = theory::slpos::win_probability_two_miner(z);
        prop_assert!(p <= z + 1e-12, "minority should never be over-paid: {p} > {z}");
        // And the complementary majority is over-paid.
        let q = theory::slpos::win_probability_two_miner(1.0 - z);
        prop_assert!(q >= 1.0 - z - 1e-12);
    }

    #[test]
    fn lemma_6_1_largest_miner_always_advantaged(
        raw in prop::collection::vec(0.01f64..1.0, 2..8),
    ) {
        let total: f64 = raw.iter().sum();
        let stakes: Vec<f64> = raw.iter().map(|s| s / total).collect();
        let probs = theory::slpos::win_probabilities(&stakes);
        let (imax, &smax) = stakes
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        let (imin, &smin) = stakes
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        prop_assert!(probs[imax] >= smax - 1e-9, "largest under-paid");
        prop_assert!(probs[imin] <= smin + 1e-9, "smallest over-paid");
    }

    #[test]
    fn cpos_bound_dominates_mlpos_bound(n in 100u64..10_000, w_ppm in 100u64..50_000) {
        // With any inflation or sharding, the C-PoS Azuma bound is at most
        // the ML-PoS one (v = 0, P = 1 case).
        let w = w_ppm as f64 / 1e6;
        let ml = theory::mlpos::azuma_unfair_bound(n, w, 0.2, 0.1);
        let cp = theory::cpos::azuma_unfair_bound(n, w, 0.1, 32, 0.2, 0.1);
        prop_assert!(cp <= ml + 1e-12);
    }

    // ---------------- withholding ----------------

    #[test]
    fn withholding_schedule_effective_points(period in 1u64..10_000, issued in 1u64..1_000_000) {
        let s = WithholdingSchedule::every(period);
        let eff = s.effective_at(issued);
        prop_assert!(eff >= issued);
        prop_assert!(eff - issued < period);
        prop_assert!(eff.is_multiple_of(period));
    }

    // ---------------- ensemble statistics ----------------

    #[test]
    fn band_points_are_ordered(seed in any::<u64>()) {
        let config = EnsembleConfig {
            checkpoints: vec![20, 60],
            ..EnsembleConfig::paper_default(0.3, 60, 80, seed)
        };
        let summary = run_ensemble(&MlPos::new(0.02), &config);
        for p in &summary.points {
            prop_assert!(p.p05 <= p.mean + 1e-12);
            prop_assert!(p.mean <= p.p95 + 1e-12);
            prop_assert!((0.0..=1.0).contains(&p.unfair_probability));
        }
    }

    // ---------------- adversarial strategies ----------------

    #[test]
    fn selfish_mining_mc_matches_eyal_sirer_within_99pct_ci(
        alpha in 0.1f64..0.45,
        gamma_idx in 0usize..3,
        seed in any::<u64>(),
    ) {
        let gamma = [0.0, 0.5, 1.0][gamma_idx];
        let exact = fairness_stats::dist::selfish_mining_relative_revenue(alpha, gamma);
        let (mean, se) = selfish_revenue_mc(alpha, gamma, seed);
        prop_assert!(
            (mean - exact).abs() <= CI_Z * se,
            "α={alpha} γ={gamma}: mc {mean} ± {se} vs closed form {exact}"
        );
    }

    #[test]
    fn selfish_mining_below_threshold_never_beats_honest(
        frac in 0.2f64..0.95,
        gamma_idx in 0usize..2, // γ=1 has an empty below-threshold region
        seed in any::<u64>(),
    ) {
        let gamma = [0.0, 0.5][gamma_idx];
        let threshold = fairness_stats::dist::selfish_mining_threshold(gamma);
        let alpha = (threshold * frac).max(0.02);
        // The closed form is strictly below honest revenue…
        let exact = fairness_stats::dist::selfish_mining_relative_revenue(alpha, gamma);
        prop_assert!(exact <= alpha + 1e-12, "closed form {exact} beats α={alpha}");
        // …and so is the Monte-Carlo estimate, up to its CI.
        let (mean, se) = selfish_revenue_mc(alpha, gamma, seed);
        prop_assert!(
            mean <= alpha + CI_Z * se,
            "below threshold (α={alpha}, γ={gamma}) selfish mining must not pay: {mean} ± {se}"
        );
    }

    #[test]
    fn grinding_one_try_is_bit_identical_to_honest(
        a in 0.05f64..0.95,
        seed in any::<u64>(),
    ) {
        let ground = adversary_game_outcome(StakeGrinding::new(1), a, seed);
        let honest = adversary_game_outcome(Honest, a, seed);
        prop_assert_eq!(ground, honest);
    }

    // ---------------- hot-path equivalences ----------------

    #[test]
    fn fenwick_winner_equals_linear_scan_winner(
        // Arbitrary weights, including degenerate zero entries (every
        // third weight is zeroed on top of the random draw).
        raw in prop::collection::vec(0.0f64..10.0, 1..24),
        zero_mask in any::<u32>(),
        seed in any::<u64>(),
    ) {
        let mut weights = raw;
        for (i, w) in weights.iter_mut().enumerate() {
            if zero_mask & (1 << (i % 32)) != 0 {
                *w = 0.0;
            }
        }
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let sampler = fairness_stats::sampling::FenwickSampler::new(&weights);
        let mut fen_rng = Xoshiro256StarStar::new(seed);
        let mut lin_rng = fen_rng.clone();
        for _ in 0..64 {
            let fen = sampler.sample(&mut fen_rng);
            let lin = fairness_core::miner::sample_categorical(&weights, &mut lin_rng);
            prop_assert_eq!(fen, lin, "weights {:?}", &weights);
        }
        // Both consumed identical RNG streams.
        prop_assert_eq!(fen_rng.next(), lin_rng.next());
    }

    #[test]
    fn step_into_is_bit_identical_to_step(
        shares in prop::collection::vec(0.05f64..1.0, 2..6),
        seed in any::<u64>(),
    ) {
        // The buffer-reuse stepping API must draw the same allocation
        // from the same RNG stream as the allocating `step` — for every
        // base protocol, including across steps as stakes compound.
        let total: f64 = shares.iter().sum();
        let stakes: Vec<f64> = shares.iter().map(|s| s / total).collect();
        let protocols: Vec<Box<dyn IncentiveProtocol>> = vec![
            Box::new(Pow::new(&stakes, 0.01)),
            Box::new(MlPos::new(0.01)),
            Box::new(SlPos::new(0.01)),
            Box::new(FslPos::new(0.01)),
            Box::new(CPos::new(0.01, 0.1, 8)),
            Box::new(Neo::new(&stakes, 0.01)),
            Box::new(Algorand::new(0.1)),
            Box::new(Eos::new(0.01, 0.1)),
            // Stateless adapters ride the same check, so their `step` and
            // `step_into` can never drift apart either.
            Box::new(CashOut::new(MlPos::new(0.01), 0, stakes[0])),
            Box::new(MiningPool::new(MlPos::new(0.01), vec![0, 1])),
            Box::new(MiningPool::new(CPos::new(0.01, 0.1, 8), vec![0, 1])),
        ];
        let mut out = fairness_core::protocol::StepOutcome::new();
        for p in &protocols {
            let mut a_rng = Xoshiro256StarStar::new(seed);
            let mut b_rng = Xoshiro256StarStar::new(seed);
            let mut evolving = stakes.clone();
            for step in 0..20 {
                let direct = p.step(&evolving, step, &mut a_rng);
                p.step_into(&evolving, step, &mut b_rng, &mut out);
                prop_assert_eq!(&direct, &out.to_rewards(), "{} step {}", p.name(), step);
                // Compound a winner so evolving stakes exercise the
                // incremental sampler path.
                if let StepRewards::Winner(w) = direct {
                    evolving[w] += 0.01;
                    out.note_weight_increment(&evolving, w, 0.01);
                }
            }
        }
    }

    #[test]
    fn adversary_step_into_is_bit_identical_to_step(
        // Attacker share capped below 1/2: an SL-PoS attacker who wins
        // most lotteries (her win probability is a/(2(1−a))) extends her
        // private branch indefinitely — the model legitimately never
        // settles there, which is a different property than the one under
        // test.
        a in 0.05f64..0.45,
        seed in any::<u64>(),
    ) {
        // The adversary adapter is stateful (interior fork machine), so
        // the two paths are compared on independent clones driven by
        // identical RNG streams.
        let shares = two_miner(a);
        let via_step = {
            let adapter = Adversary::new(SlPos::new(0.01), SelfishMining::new(0.5));
            let mut rng = Xoshiro256StarStar::new(seed);
            (0..50).map(|i| adapter.step(&shares, i, &mut rng)).collect::<Vec<_>>()
        };
        let via_step_into = {
            let adapter = Adversary::new(SlPos::new(0.01), SelfishMining::new(0.5));
            let mut rng = Xoshiro256StarStar::new(seed);
            let mut out = fairness_core::protocol::StepOutcome::new();
            (0..50)
                .map(|i| {
                    adapter.step_into(&shares, i, &mut rng, &mut out);
                    out.to_rewards()
                })
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(via_step, via_step_into);
    }
}

/// Family-wise 99% confidence z-score for the Monte-Carlo-vs-closed-form
/// checks: each property samples 64 cases (the stub's default), so the
/// per-case two-sided level is Bonferroni-corrected to `0.01/64`
/// (`z ≈ 3.78`; a perfectly calibrated estimator then fails the whole
/// suite < 1% of the time, while a genuine model error — e.g. a wrong γ
/// term, which sits tens of σ away at these repetition counts — still
/// fails loudly). The vendored proptest draws a fixed test-name-seeded
/// case set, so a green run is deterministic.
const CI_Z: f64 = 3.8;

/// Monte-Carlo selfish-mining relative revenue: mean and standard error
/// over independent repetitions of the model-level fork driver.
fn selfish_revenue_mc(alpha: f64, gamma: f64, seed: u64) -> (f64, f64) {
    const REPS: usize = 48;
    const ROUNDS: u64 = 12_000;
    let strategy = SelfishMining::new(gamma);
    let seq = fairness_stats::rng::SeedSequence::new(seed);
    let mut revenues = Vec::with_capacity(REPS);
    for i in 0..REPS {
        let mut rng = seq.child_rng(i as u64);
        revenues.push(run_fork_game(&strategy, alpha, ROUNDS, &mut rng).relative_revenue());
    }
    let mean = revenues.iter().sum::<f64>() / REPS as f64;
    let var = revenues
        .iter()
        .map(|r| (r - mean) * (r - mean))
        .sum::<f64>()
        / (REPS as f64 - 1.0);
    (mean, (var / REPS as f64).sqrt())
}

/// Bitwise-comparable outcome of a 300-step SL-PoS game with miner 0
/// playing `strategy`.
fn adversary_game_outcome<S: fairness_core::adversary::Strategy + Clone>(
    strategy: S,
    a: f64,
    seed: u64,
) -> ((f64, f64), (f64, f64)) {
    let shares = two_miner(a);
    let mut game = MiningGame::new(Adversary::new(SlPos::new(0.01), strategy), &shares);
    let mut rng = Xoshiro256StarStar::new(seed);
    game.run(300, &mut rng);
    (
        (game.earned(0), game.earned(1)),
        (game.stake(0), game.stake(1)),
    )
}
