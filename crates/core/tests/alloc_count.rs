//! Zero-allocation regression guard for the stepping hot path.
//!
//! A counting global allocator wraps the system allocator; after a short
//! warm-up (which fills the [`StepOutcome`] scratch pools and the
//! incremental sampler), steady-state stepping of **every base protocol**
//! must perform exactly zero heap allocations per
//! [`MiningGame::step`] — the property the buffer-reuse `step_into` API
//! exists to provide. A regression (a protocol reaching for `Vec`, a
//! scratch pool that stops recycling) fails this test immediately.
//!
//! Everything runs inside one `#[test]` so the counter never races
//! concurrent test threads.

use fairness_core::game::MiningGame;
use fairness_core::miner::paper_multi_miner;
use fairness_core::prelude::*;
use fairness_core::protocol::IncentiveProtocol;
use fairness_stats::rng::Xoshiro256StarStar;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static COUNTING: AtomicBool = AtomicBool::new(false);

struct CountingAllocator;

// SAFETY: delegates every operation to the system allocator unchanged;
// the wrapper only increments counters.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// Runs `steps` game steps with the counter armed, returning how many
/// allocations happened.
fn allocations_during_steps<P: IncentiveProtocol>(
    game: &mut MiningGame<P>,
    rng: &mut Xoshiro256StarStar,
    steps: u64,
) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    COUNTING.store(true, Ordering::Relaxed);
    for _ in 0..steps {
        game.step(rng);
    }
    COUNTING.store(false, Ordering::Relaxed);
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

/// Asserts a game's steady state is allocation-free. The counter is
/// process-global, so a stray allocation from the test harness's own
/// threads (libtest runs the test off the main thread) can land inside an
/// armed window; a *real* hot-path regression allocates in **every**
/// window, so the claim is retried on the same warm game before failing.
fn assert_steady_state_clean<P: IncentiveProtocol>(
    name: &str,
    game: &mut MiningGame<P>,
    rng: &mut Xoshiro256StarStar,
) {
    // Warm-up: first steps may populate scratch pools and build the
    // incremental sampler.
    game.run(16, rng);
    let mut last = 0;
    for _attempt in 0..3 {
        last = allocations_during_steps(game, rng, 256);
        if last == 0 {
            return;
        }
    }
    panic!(
        "{name} with {} miners allocated {last} times in 256 steady-state steps \
         (in three consecutive windows)",
        game.miner_count()
    );
}

#[test]
fn steady_state_stepping_never_allocates() {
    // Three miners so split protocols and the sampler have real work; ten
    // miners guards the multi-miner sweeps; ten thousand guards the
    // struct-of-arrays ledger at population scale — the `scale` experiment
    // runs to 10⁶ miners, and any per-step O(m) materialization or hidden
    // Vec would surface here long before wall-clock does.
    for shares in [
        paper_multi_miner(3, 0.2),
        paper_multi_miner(10, 0.2),
        paper_multi_miner(10_000, 0.2),
    ] {
        macro_rules! check {
            ($name:literal, $protocol:expr) => {{
                let mut game = MiningGame::new($protocol, &shares);
                let mut rng = Xoshiro256StarStar::new(7);
                assert_steady_state_clean($name, &mut game, &mut rng);
            }};
        }
        check!("pow", Pow::new(&shares, 0.01));
        check!("ml-pos", MlPos::new(0.01));
        check!("sl-pos", SlPos::new(0.01));
        check!("fsl-pos", FslPos::new(0.01));
        check!("c-pos", CPos::new(0.01, 0.1, 8));
        check!("neo", Neo::new(&shares, 0.01));
        check!("algorand", Algorand::new(0.1));
        check!("eos", Eos::new(0.01, 0.1));
    }

    // The software-pipelined two-miner SL-PoS kernel (taken by `run`, not
    // `step`) must be allocation-free too. Same test fn as above: a
    // second #[test] would run on a parallel thread whose setup
    // allocations race the armed counter. Same retry rationale as
    // `assert_steady_state_clean`.
    let mut game = MiningGame::new(SlPos::new(0.01), &[0.2, 0.8]);
    let mut rng = Xoshiro256StarStar::new(9);
    game.run(16, &mut rng);
    let mut last = 0;
    for _attempt in 0..3 {
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        COUNTING.store(true, Ordering::Relaxed);
        game.run(4096, &mut rng);
        COUNTING.store(false, Ordering::Relaxed);
        last = ALLOCATIONS.load(Ordering::Relaxed) - before;
        if last == 0 {
            return;
        }
    }
    panic!("fused SL-PoS kernel allocated {last} times in three consecutive windows");
}
