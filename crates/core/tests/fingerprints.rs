//! Snapshot test pinning the [`StableHasher`] fingerprint of every
//! [`IncentiveProtocol::params`] implementation.
//!
//! Memoizing sweep harnesses key their caches — and derive ensemble seeds —
//! from `(name, rewards_compound, params)` digests. A silent change to any
//! `params()` (reordered fields, a dropped tag, a new default) would
//! invalidate or, worse, *alias* cache entries without any test noticing:
//! sweeps would silently recompute under fresh seeds or collide across
//! configurations. This snapshot makes such a change loud: update the
//! pinned digest only when the parameter change is intentional, and expect
//! previously cached/persisted ensembles to be re-keyed.

use fairness_core::prelude::*;
use fairness_stats::cache::StableHasher;

/// The digest the sweep-cache key derives per protocol configuration
/// (mirrors `EnsembleKey`'s protocol-dependent prefix).
fn fingerprint<P: IncentiveProtocol>(protocol: &P) -> u64 {
    let mut h = StableHasher::new();
    h.write_str(protocol.name());
    h.write_u64(u64::from(protocol.rewards_compound()));
    let params = protocol.params();
    h.write_u64(params.len() as u64);
    for p in params {
        h.write_f64(p);
    }
    h.finish()
}

#[test]
fn params_fingerprints_are_pinned() {
    let shares = [0.2, 0.8];
    let pinned: Vec<(&str, u64, u64)> = vec![
        (
            "PoW",
            fingerprint(&Pow::new(&shares, 0.01)),
            0xE0F7_E057_7B8F_68E5,
        ),
        (
            "ML-PoS",
            fingerprint(&MlPos::new(0.01)),
            0x458B_19BC_C157_1BCD,
        ),
        (
            "SL-PoS",
            fingerprint(&SlPos::new(0.01)),
            0xD617_615E_5DFD_F519,
        ),
        (
            "FSL-PoS",
            fingerprint(&FslPos::new(0.01)),
            0x7497_A1E5_F58E_6B18,
        ),
        (
            "C-PoS",
            fingerprint(&CPos::new(0.01, 0.1, 32)),
            0x295E_7B49_41AB_DEA9,
        ),
        (
            "NEO",
            fingerprint(&Neo::new(&shares, 0.01)),
            0x8F49_415E_1623_9B44,
        ),
        (
            "Algorand",
            fingerprint(&Algorand::new(0.1)),
            0x30B8_A6DE_2FEB_41EC,
        ),
        (
            "EOS",
            fingerprint(&Eos::new(0.01, 0.1)),
            0x9815_90CF_E10C_160A,
        ),
        (
            "cash-out(ML-PoS)",
            fingerprint(&CashOut::new(MlPos::new(0.01), 0, 0.2)),
            0x1172_8EAD_F4DC_4663,
        ),
        (
            "mining-pool(ML-PoS)",
            fingerprint(&MiningPool::new(MlPos::new(0.01), vec![0, 1])),
            0xF2A9_0128_3885_D2C6,
        ),
        (
            "selfish-mining(PoW)",
            fingerprint(&Adversary::new(
                Pow::new(&shares, 0.01),
                SelfishMining::new(0.5),
            )),
            0x6D36_F008_DD9A_9622,
        ),
        (
            "stake-grinding(SL-PoS)",
            fingerprint(&Adversary::new(SlPos::new(0.01), StakeGrinding::new(4))),
            0x5F18_9EB2_BA7B_F19E,
        ),
        (
            "honest(SL-PoS)",
            fingerprint(&Adversary::new(SlPos::new(0.01), Honest)),
            0x9E0C_B5DA_86C8_6B0F,
        ),
        (
            "cluster-tax(SL-PoS)",
            fingerprint(&ClusterTax::new(SlPos::new(0.01), 0.5, 0.05, &shares)),
            0x4F0E_2470_FCB5_0A1B,
        ),
        (
            "fee-lottery[uniform](ML-PoS)",
            fingerprint(&FeeLottery::new(MlPos::new(0.01), 0.5, false)),
            0xD555_277F_4364_0384,
        ),
        (
            "fee-lottery[value](ML-PoS)",
            fingerprint(&FeeLottery::new(MlPos::new(0.01), 0.5, true)),
            0x87DB_5C69_004B_B960,
        ),
        (
            "alleviation(ML-PoS)",
            fingerprint(&Alleviation::new(MlPos::new(0.01), 2.0)),
            0xAD68_FF32_44D6_F46E,
        ),
        (
            "sybil(fee-lottery[uniform](ML-PoS))",
            fingerprint(&Sybil::new(
                FeeLottery::new(MlPos::new(0.01), 0.5, false),
                SybilSplit::new(10),
            )),
            0xAD67_AA43_4B62_47B4,
        ),
        (
            "sybil-split(SL-PoS)",
            fingerprint(&Adversary::new(SlPos::new(0.01), SybilSplit::new(10))),
            0xB326_F6B0_8C96_EBB7,
        ),
    ];
    let mut mismatches = Vec::new();
    for (label, actual, expected) in &pinned {
        if actual != expected {
            mismatches.push(format!(
                "{label}: got {actual:#018X}, pinned {expected:#018X}"
            ));
        }
    }
    assert!(
        mismatches.is_empty(),
        "params() fingerprints drifted — if intentional, re-pin and expect every\n\
         cached ensemble for these protocols to be re-keyed:\n{}",
        mismatches.join("\n")
    );
    // The snapshot must also stay collision-free.
    let mut digests: Vec<u64> = pinned.iter().map(|(_, a, _)| *a).collect();
    digests.sort_unstable();
    digests.dedup();
    assert_eq!(digests.len(), pinned.len(), "fingerprint collision");
}

#[test]
fn every_registry_entry_constructs_and_matches_the_pinned_snapshots() {
    // Registry exhaustiveness: every entry's canonical example must
    // construct from `(name, params)`, and the constructed protocol's
    // digest must equal the pinned hand-built snapshot above — proving the
    // registry is fingerprint-transparent (same cache keys, same derived
    // seeds as direct construction).
    use fairness_core::registry;
    let shares = [0.2, 0.8];
    let pinned: &[(&str, u64)] = &[
        ("pow", 0xE0F7_E057_7B8F_68E5),
        ("ml-pos", 0x458B_19BC_C157_1BCD),
        ("sl-pos", 0xD617_615E_5DFD_F519),
        ("fsl-pos", 0x7497_A1E5_F58E_6B18),
        ("c-pos", 0x295E_7B49_41AB_DEA9),
        ("neo", 0x8F49_415E_1623_9B44),
        ("algorand", 0x30B8_A6DE_2FEB_41EC),
        ("eos", 0x9815_90CF_E10C_160A),
        ("cash-out", 0x1172_8EAD_F4DC_4663),
        ("mining-pool", 0xF2A9_0128_3885_D2C6),
        ("adversary", 0x6D36_F008_DD9A_9622),
        ("cluster-tax", 0x4F0E_2470_FCB5_0A1B),
        ("fee-lottery", 0xD555_277F_4364_0384),
        ("alleviation", 0xAD68_FF32_44D6_F46E),
        ("sybil", 0xAD67_AA43_4B62_47B4),
    ];
    let registered: Vec<&str> = registry::registry().iter().map(|e| e.name).collect();
    let snapshot: Vec<&str> = pinned.iter().map(|(n, _)| *n).collect();
    assert_eq!(
        registered, snapshot,
        "registry and snapshot list must cover exactly the same entries — \
         pin a digest for every new protocol"
    );
    for entry in registry::registry() {
        let (_, expected) = pinned
            .iter()
            .find(|(n, _)| *n == entry.name)
            .expect("checked above");
        let protocol = registry::construct(&entry.example(), &shares)
            .unwrap_or_else(|e| panic!("`{}` example must construct: {e}", entry.name));
        assert_eq!(
            fingerprint(&protocol),
            *expected,
            "registry-built `{}` drifted from the pinned hand-built digest",
            entry.name
        );
    }
}

#[test]
fn every_registry_strategy_constructs_and_matches_the_pinned_snapshots() {
    // Same exhaustiveness for adversary strategies: each is pinned through
    // the adversary adapter over the inner protocol used by the hand-built
    // snapshot above.
    use fairness_core::registry;
    use fairness_core::scenario::ProtocolSpec;
    let pinned: &[(&str, ProtocolSpec, u64)] = &[
        (
            "honest",
            ProtocolSpec::new("sl-pos").with("w", 0.01),
            0x9E0C_B5DA_86C8_6B0F,
        ),
        (
            "selfish-mining",
            ProtocolSpec::new("pow").with("w", 0.01),
            0x6D36_F008_DD9A_9622,
        ),
        (
            "stake-grinding",
            ProtocolSpec::new("sl-pos").with("w", 0.01),
            0x5F18_9EB2_BA7B_F19E,
        ),
        (
            "sybil-split",
            ProtocolSpec::new("sl-pos").with("w", 0.01),
            0xB326_F6B0_8C96_EBB7,
        ),
        (
            "optimal-withholding",
            ProtocolSpec::new("pow").with("w", 0.01),
            0x1B79_1FC2_5FAF_D6A7,
        ),
        (
            "best-response",
            ProtocolSpec::new("pow").with("w", 0.01),
            0xA391_E6EA_3735_B246,
        ),
    ];
    let registered: Vec<&str> = registry::strategies().iter().map(|e| e.name).collect();
    let snapshot: Vec<&str> = pinned.iter().map(|(n, _, _)| *n).collect();
    assert_eq!(registered, snapshot, "strategy registry drifted");
    for (name, inner, expected) in pinned {
        let strategy = match *name {
            "selfish-mining" => ProtocolSpec::new(*name).with("gamma", 0.5),
            "stake-grinding" => ProtocolSpec::new(*name).with("tries", 4.0),
            "sybil-split" => ProtocolSpec::new(*name).with("identities", 10.0),
            "optimal-withholding" => ProtocolSpec::new(*name)
                .with("alpha", 0.3)
                .with("gamma", 0.5)
                .with("depth", 8.0),
            "best-response" => ProtocolSpec::new(*name)
                .with("alpha", 0.3)
                .with("opponent", 0.2)
                .with("depth", 8.0),
            _ => ProtocolSpec::new(*name),
        };
        let spec = ProtocolSpec::new("adversary")
            .with("inner", inner.clone())
            .with("strategy", strategy);
        let protocol = registry::construct(&spec, &[0.2, 0.8])
            .unwrap_or_else(|e| panic!("adversary({name}) must construct: {e}"));
        assert_eq!(
            fingerprint(&protocol),
            *expected,
            "registry-built adversary({name}) drifted from the pinned digest"
        );
    }
}

#[test]
fn fingerprints_track_every_parameter() {
    // Spot-check sensitivity: each constructor argument must move the
    // digest, or two sweeps would share one cache slot.
    assert_ne!(
        fingerprint(&MlPos::new(0.01)),
        fingerprint(&MlPos::new(0.02))
    );
    assert_ne!(
        fingerprint(&CPos::new(0.01, 0.1, 32)),
        fingerprint(&CPos::new(0.01, 0.1, 1))
    );
    assert_ne!(
        fingerprint(&Adversary::new(
            Pow::new(&[0.2, 0.8], 0.01),
            SelfishMining::new(0.0)
        )),
        fingerprint(&Adversary::new(
            Pow::new(&[0.2, 0.8], 0.01),
            SelfishMining::new(1.0)
        )),
    );
    assert_ne!(
        fingerprint(&Adversary::new(SlPos::new(0.01), StakeGrinding::new(2))),
        fingerprint(&Adversary::new(SlPos::new(0.01), StakeGrinding::new(3))),
    );
    // Adapters wrapping different inner protocols at equal numerics.
    assert_ne!(
        fingerprint(&CashOut::new(MlPos::new(0.01), 0, 0.2)),
        fingerprint(&CashOut::new(FslPos::new(0.01), 0, 0.2))
    );
}
