//! Property tests pinning the fork-MDP machinery against the closed-form
//! theory and the Monte-Carlo fork driver.
//!
//! The load-bearing identity: restricting the truncated fork MDP to the
//! Eyal–Sirer policy and evaluating its average relative revenue must
//! reproduce `fairness_core::theory::selfish`'s closed form (the paper's
//! selfish-mining baseline) at every `(α, γ)` grid point — the MDP is a
//! *superset* of that strategy space, so this check validates states,
//! transition probabilities, and both reward channels at once.

use fairness_core::adversary::{run_fork_game, SelfishMining};
use fairness_core::mdp::fork::ForkMdp;
use fairness_core::mdp::{solve_optimal, OptimalWithholding};
use fairness_core::theory::selfish::selfish_mining_relative_revenue;
use fairness_stats::rng::Xoshiro256StarStar;

const ALPHAS: [f64; 5] = [0.10, 0.20, 0.30, 0.40, 0.45];
const GAMMAS: [f64; 3] = [0.0, 0.5, 1.0];

/// Truncation depth and closed-form tolerance per α. The private-lead
/// distribution has a geometric tail with ratio `α/(1−α)`, so the
/// truncation bias shrinks like `(α/(1−α))^depth`: negligible by depth 24
/// for α ≤ 0.30, while α = 0.45 (ratio 0.818) still carries a ~1%
/// downward bias at depth 96. See the README's truncation-depth note.
fn depth_and_tolerance(alpha: f64) -> (u32, f64) {
    if alpha > 0.40 {
        (96, 1.2e-2)
    } else if alpha > 0.30 {
        (64, 2e-3)
    } else {
        (24, 2e-3)
    }
}

#[test]
fn eyal_sirer_mdp_value_matches_the_closed_form_across_the_grid() {
    for alpha in ALPHAS {
        for gamma in GAMMAS {
            let (depth, tolerance) = depth_and_tolerance(alpha);
            let mdp = ForkMdp::new(alpha, gamma, depth);
            let policy = mdp.induced_policy(&SelfishMining::new(gamma));
            let value = mdp.evaluate(&policy);
            let closed = selfish_mining_relative_revenue(alpha, gamma);
            assert!(
                value.converged,
                "policy evaluation must converge at ({alpha}, {gamma})"
            );
            assert!(
                (value.revenue - closed).abs() < tolerance,
                "ES revenue drifted at ({alpha}, {gamma}): mdp {} vs closed form {closed}",
                value.revenue
            );
        }
    }
}

#[test]
fn truncation_bias_vanishes_monotonically_from_below() {
    // The forced closure (publish/adopt at the depth boundary) can only
    // hurt the attacker, so deeper truncation is monotonically better and
    // approaches the closed form from below.
    let (alpha, gamma) = (0.45, 0.0);
    let closed = selfish_mining_relative_revenue(alpha, gamma);
    let mut last = 0.0;
    for depth in [24u32, 48, 96] {
        let mdp = ForkMdp::new(alpha, gamma, depth);
        let value = mdp.evaluate(&mdp.induced_policy(&SelfishMining::new(gamma)));
        assert!(
            value.revenue > last,
            "revenue must increase with depth: {} at depth {depth} after {last}",
            value.revenue
        );
        assert!(
            value.revenue < closed + 1e-9,
            "truncated value may not exceed the closed form: {} vs {closed}",
            value.revenue
        );
        last = value.revenue;
    }
}

#[test]
fn optimal_revenue_dominates_honest_and_eyal_sirer_everywhere() {
    for alpha in ALPHAS {
        for gamma in GAMMAS {
            // Dominance holds at every truncation depth (honest and
            // Eyal–Sirer are in the same truncated strategy space), so a
            // modest depth keeps the 15 Dinkelbach solves fast.
            let depth = 16;
            let solved = solve_optimal(alpha, gamma, depth);
            // Honest play is in the MDP's strategy space and earns exactly α.
            assert!(
                solved.revenue >= alpha - 1e-9,
                "optimal below honest at ({alpha}, {gamma}): {}",
                solved.revenue
            );
            // So is the Eyal–Sirer policy (the Dinkelbach seed).
            assert!(
                solved.revenue >= solved.eyal_sirer - 1e-12,
                "optimal below Eyal–Sirer at ({alpha}, {gamma}): {} < {}",
                solved.revenue,
                solved.eyal_sirer
            );
            assert!(
                solved.converged,
                "solve must converge at ({alpha}, {gamma})"
            );
        }
    }
}

#[test]
fn independent_solves_produce_identical_tables_and_fingerprints() {
    // Two from-scratch solves (bypassing the process-wide cache) must agree
    // byte-for-byte — the determinism the CSV byte-diff CI step relies on.
    let (alpha, gamma, depth) = (0.35, 0.5, 16);
    let seed = selfish_mining_relative_revenue(alpha, gamma);
    let runs: Vec<_> = (0..2)
        .map(|_| {
            let mdp = ForkMdp::new(alpha, gamma, depth);
            let (policy, value, _, _) = mdp.optimize(seed);
            (mdp.to_full_table(&policy), value.revenue)
        })
        .collect();
    assert_eq!(runs[0].0, runs[1].0, "solve is not byte-deterministic");
    assert_eq!(runs[0].1.to_bits(), runs[1].1.to_bits());
    // And the cached entry agrees with the from-scratch table.
    let cached = solve_optimal(alpha, gamma, depth);
    assert_eq!(cached.table, runs[0].0);
}

#[test]
fn monte_carlo_fork_driver_agrees_with_the_mdp_value() {
    // The same chain semantics, realized two ways: the exact stationary
    // value from the MDP and a long simulated fork game must agree for
    // both the fixed Eyal–Sirer policy and the solved optimal policy.
    let (alpha, gamma) = (0.35, 0.5);
    let depth = 16;

    let mdp = ForkMdp::new(alpha, gamma, depth);
    let es_policy = mdp.induced_policy(&SelfishMining::new(gamma));
    let es_value = mdp.evaluate(&es_policy).revenue;
    let mut rng = Xoshiro256StarStar::new(0x00D1_CE00);
    let es_mc =
        run_fork_game(&SelfishMining::new(gamma), alpha, 400_000, &mut rng).relative_revenue();
    assert!(
        (es_mc - es_value).abs() < 5e-3,
        "ES Monte-Carlo {es_mc} vs MDP {es_value}"
    );

    let strategy = OptimalWithholding::new(alpha, gamma, depth);
    let opt_value = strategy.solved().revenue;
    let mut rng = Xoshiro256StarStar::new(0x0B5E_55ED);
    let opt_mc = run_fork_game(&strategy, alpha, 400_000, &mut rng).relative_revenue();
    assert!(
        (opt_mc - opt_value).abs() < 5e-3,
        "optimal Monte-Carlo {opt_mc} vs MDP {opt_value}"
    );
}
