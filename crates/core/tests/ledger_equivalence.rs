//! Equivalence suite pinning the [`StakeLedger`] struct-of-arrays engine
//! to the pre-refactor per-miner stepping path.
//!
//! Two independent instruments, mirroring the `fused_kernel_matches_single_steps`
//! pattern from the SL-PoS kernel work:
//!
//! 1. **Golden fixtures** — 66 digests (11 protocol specs × m ∈ {3, 7, 40}
//!    × withholding on/off) captured from the tree *before* the ledger
//!    refactor, hashing every checkpoint λ of every miner plus all final
//!    stakes and earnings. The ledger path must reproduce each digest
//!    bit-for-bit.
//! 2. **A reference stepper** — a deliberately naive re-implementation of
//!    the old per-miner reward loop, kept here so it can never "drift
//!    along" with engine changes. Property tests drive both engines over
//!    random protocols, miner counts, seeds, and withholding schedules and
//!    demand bitwise-equal columns and aligned RNG streams after every
//!    step.

use fairness_core::game::MiningGame;
use fairness_core::miner::paper_multi_miner;
use fairness_core::protocol::{IncentiveProtocol, StepOutcome, StepRewardsView};
use fairness_core::registry::{self, BoxedProtocol};
use fairness_core::scenario::ProtocolSpec;
use fairness_core::withholding::WithholdingSchedule;
use fairness_stats::cache::StableHasher;
use fairness_stats::rng::Xoshiro256StarStar;
use proptest::prelude::*;

/// The 8 base protocols and 3 adapters at their paper-default parameters.
fn protocol_specs() -> Vec<(&'static str, ProtocolSpec)> {
    vec![
        ("pow", ProtocolSpec::new("pow").with("w", 0.01)),
        ("ml-pos", ProtocolSpec::new("ml-pos").with("w", 0.01)),
        ("sl-pos", ProtocolSpec::new("sl-pos").with("w", 0.01)),
        ("fsl-pos", ProtocolSpec::new("fsl-pos").with("w", 0.01)),
        (
            "c-pos",
            ProtocolSpec::new("c-pos")
                .with("w", 0.01)
                .with("v", 0.1)
                .with("shards", 8.0),
        ),
        ("neo", ProtocolSpec::new("neo").with("w", 0.01)),
        ("algorand", ProtocolSpec::new("algorand").with("v", 0.1)),
        (
            "eos",
            ProtocolSpec::new("eos").with("w", 0.01).with("v", 0.1),
        ),
        (
            "cash-out",
            ProtocolSpec::new("cash-out")
                .with("inner", ProtocolSpec::new("ml-pos").with("w", 0.01))
                .with("miner", 0.0)
                .with("stake", 0.25),
        ),
        (
            "mining-pool",
            ProtocolSpec::new("mining-pool")
                .with("inner", ProtocolSpec::new("sl-pos").with("w", 0.01))
                .with("members", vec![0.0, 1.0]),
        ),
        (
            "adversary",
            ProtocolSpec::new("adversary")
                .with("inner", ProtocolSpec::new("pow").with("w", 0.01))
                .with(
                    "strategy",
                    ProtocolSpec::new("selfish-mining").with("gamma", 0.5),
                ),
        ),
    ]
}

/// Digests captured from commit 61d2c4d (pre-`StakeLedger`), keyed by
/// (protocol, m, withholding-enabled). Regenerate ONLY if the simulation
/// semantics intentionally change — these are the proof that the
/// struct-of-arrays engine altered nothing.
const GOLDEN: &[(&str, usize, bool, u64)] = &[
    ("pow", 3, false, 0xe67ceb2c9b10d07b),
    ("pow", 3, true, 0xe67ceb2c9b10d07b),
    ("ml-pos", 3, false, 0x4be366ed44351def),
    ("ml-pos", 3, true, 0x65944d5fb622a5b3),
    ("sl-pos", 3, false, 0x2ab232400d678788),
    ("sl-pos", 3, true, 0x5021386ef490023c),
    ("fsl-pos", 3, false, 0x51b2cc829f384150),
    ("fsl-pos", 3, true, 0x47f45f9e6097b0bb),
    ("c-pos", 3, false, 0xff906ad13ab012f1),
    ("c-pos", 3, true, 0x99b07b22b081e8d2),
    ("neo", 3, false, 0xe67ceb2c9b10d07b),
    ("neo", 3, true, 0xe67ceb2c9b10d07b),
    ("algorand", 3, false, 0xcc12424726dacfe1),
    ("algorand", 3, true, 0x4226c797eb3556a3),
    ("eos", 3, false, 0xeb512c2bdc2f98ba),
    ("eos", 3, true, 0xaef1233f05d11b8a),
    ("cash-out", 3, false, 0xb9b5311874309b86),
    ("cash-out", 3, true, 0x91c56f40f310df70),
    ("mining-pool", 3, false, 0x8a92b031ba4ca9e2),
    ("mining-pool", 3, true, 0xdb9ace47027ac1fb),
    ("adversary", 3, false, 0x58647b1eefe23cc2),
    ("adversary", 3, true, 0x58647b1eefe23cc2),
    ("pow", 7, false, 0x4c05d5ac5a98832f),
    ("pow", 7, true, 0x4c05d5ac5a98832f),
    ("ml-pos", 7, false, 0x29afc8df5599ae0d),
    ("ml-pos", 7, true, 0x4274d1f05b1beb9c),
    ("sl-pos", 7, false, 0x97ec00f8fce63ff4),
    ("sl-pos", 7, true, 0x2413e1d8d453937a),
    ("fsl-pos", 7, false, 0xe2e76bc8c2c6354c),
    ("fsl-pos", 7, true, 0x65e27c2d4f27c2f3),
    ("c-pos", 7, false, 0xe77a4bf08079bd0a),
    ("c-pos", 7, true, 0xe0a7373a6f0c2761),
    ("neo", 7, false, 0x4c05d5ac5a98832f),
    ("neo", 7, true, 0x4c05d5ac5a98832f),
    ("algorand", 7, false, 0x8748797ee4fc593e),
    ("algorand", 7, true, 0x3f267d30380eac78),
    ("eos", 7, false, 0xd8c93c11cd0c9e3e),
    ("eos", 7, true, 0x49c686bb12a02135),
    ("cash-out", 7, false, 0x7ca8af3c1d1201dd),
    ("cash-out", 7, true, 0x6065aa417910cbbc),
    ("mining-pool", 7, false, 0xa7f2e5a36c439ef1),
    ("mining-pool", 7, true, 0x5136e3504a8154b2),
    ("adversary", 7, false, 0xdbd87ccffc7b5d00),
    ("adversary", 7, true, 0xdbd87ccffc7b5d00),
    ("pow", 40, false, 0x7c6938cd7d669b54),
    ("pow", 40, true, 0x7c6938cd7d669b54),
    ("ml-pos", 40, false, 0x7540755a128b2db9),
    ("ml-pos", 40, true, 0x7367c43d6b3fdc92),
    ("sl-pos", 40, false, 0x664ff1cdee49bf46),
    ("sl-pos", 40, true, 0x96544d24642b903d),
    ("fsl-pos", 40, false, 0x5fe53e8685edbdf8),
    ("fsl-pos", 40, true, 0xf260271fa0bcd212),
    ("c-pos", 40, false, 0xac32b474df41a1d2),
    ("c-pos", 40, true, 0x79b8bbd362499f62),
    ("neo", 40, false, 0x7c6938cd7d669b54),
    ("neo", 40, true, 0x7c6938cd7d669b54),
    ("algorand", 40, false, 0x1fa142f531043534),
    ("algorand", 40, true, 0x393c204e7ff60947),
    ("eos", 40, false, 0xe0c2a637be5fec44),
    ("eos", 40, true, 0xb1fa370eb07b7b11),
    ("cash-out", 40, false, 0x34ed6e51b028b7b8),
    ("cash-out", 40, true, 0xbda36a8c5165c6ce),
    ("mining-pool", 40, false, 0xfe655e3f1a318404),
    ("mining-pool", 40, true, 0x5b6a65fe270cbf8d),
    ("adversary", 40, false, 0xddb75ce831f27a46),
    ("adversary", 40, true, 0xddb75ce831f27a46),
];

fn digest_run(name: &str, m: usize, withholding: Option<u64>) -> u64 {
    let shares = paper_multi_miner(m, 0.2);
    let spec = protocol_specs()
        .into_iter()
        .find(|(n, _)| *n == name)
        .expect("known protocol")
        .1;
    let protocol = registry::construct(&spec, &shares).expect("constructs");
    let mut game = MiningGame::new(protocol, &shares);
    if let Some(period) = withholding {
        game = game.with_withholding(WithholdingSchedule::every(period));
    }
    let mut rng = Xoshiro256StarStar::new(0xC0FFEE ^ m as u64);
    let trajs = game.run_with_checkpoints_all(&[10, 60, 300], &mut rng);
    let mut h = StableHasher::new();
    for t in &trajs {
        for v in &t.values {
            h.write_f64(*v);
        }
    }
    for i in 0..m {
        h.write_f64(game.stake(i));
        h.write_f64(game.earned(i));
    }
    h.finish()
}

/// Every protocol × population × withholding combination reproduces its
/// pre-refactor digest bit-for-bit through the ledger engine.
#[test]
fn ledger_path_matches_pre_refactor_goldens() {
    for &(name, m, wh, expected) in GOLDEN {
        let got = digest_run(name, m, if wh { Some(50) } else { None });
        assert_eq!(
            got, expected,
            "{name} at m={m} (withholding: {wh}) diverged from the \
             pre-StakeLedger engine: 0x{got:016x} != 0x{expected:016x}"
        );
    }
}

/// The pre-refactor stepping loop, verbatim: parallel per-miner vectors,
/// per-element reward application, no running totals. Kept naive on
/// purpose — it is the specification the ledger engine is tested against.
struct ReferenceGame {
    protocol: BoxedProtocol,
    stakes: Vec<f64>,
    pending: Vec<f64>,
    earned: Vec<f64>,
    steps: u64,
    withholding: Option<WithholdingSchedule>,
    outcome: StepOutcome,
    reward_per_step: f64,
    compounds: bool,
}

impl ReferenceGame {
    fn new(protocol: BoxedProtocol, initial_shares: &[f64]) -> Self {
        let stakes = fairness_core::miner::normalize_shares(initial_shares);
        let m = stakes.len();
        let reward_per_step = protocol.reward_per_step();
        let compounds = protocol.rewards_compound();
        Self {
            protocol,
            stakes,
            pending: vec![0.0; m],
            earned: vec![0.0; m],
            steps: 0,
            withholding: None,
            outcome: StepOutcome::new(),
            reward_per_step,
            compounds,
        }
    }

    fn step(&mut self, rng: &mut Xoshiro256StarStar) {
        self.protocol
            .step_into(&self.stakes, self.steps, rng, &mut self.outcome);
        let total = self.reward_per_step;
        let is_split = match self.outcome.view() {
            StepRewardsView::Winner(w) => {
                self.earned[w] += total;
                if self.compounds {
                    if self.withholding.is_some() {
                        self.pending[w] += total;
                    } else {
                        self.stakes[w] += total;
                        self.outcome.note_weight_increment(&self.stakes, w, total);
                    }
                }
                false
            }
            StepRewardsView::Split(alloc) => {
                let withholding = self.withholding.is_some();
                for (i, &r) in alloc.iter().enumerate() {
                    self.earned[i] += r;
                    if self.compounds {
                        if withholding {
                            self.pending[i] += r;
                        } else {
                            self.stakes[i] += r;
                        }
                    }
                }
                true
            }
        };
        if is_split && self.compounds && self.withholding.is_none() {
            self.outcome.invalidate_weights();
        }
        self.steps += 1;
        if let Some(schedule) = self.withholding {
            if schedule.takes_effect_after(self.steps) {
                for (s, p) in self.stakes.iter_mut().zip(&mut self.pending) {
                    *s += std::mem::take(p);
                }
                self.outcome.invalidate_weights();
            }
        }
    }
}

proptest! {
    /// Random protocol, population, seed, withholding: after every single
    /// step the ledger engine and the reference loop hold bitwise-equal
    /// stake and income columns, and their RNG streams stay aligned.
    #[test]
    fn ledger_engine_matches_reference_stepper(
        proto_idx in 0usize..11,
        m in 2usize..=40,
        // Below 1/2: a selfish-mining adversary at majority hash share
        // (rightly) never settles its fork.
        a in 0.05f64..0.45,
        seed in any::<u64>(),
        withholding_raw in 0u64..60,
        steps in 40u64..160,
    ) {
        // Raw draw below 2 means "no withholding" (the stub proptest has
        // no Option strategy).
        let withholding_period = (withholding_raw >= 2).then_some(withholding_raw);
        let shares = paper_multi_miner(m, a);
        let (name, spec) = protocol_specs().swap_remove(proto_idx);

        let mut game = MiningGame::new(
            registry::construct(&spec, &shares).expect("constructs"),
            &shares,
        );
        let mut reference = ReferenceGame::new(
            registry::construct(&spec, &shares).expect("constructs"),
            &shares,
        );
        if let Some(period) = withholding_period {
            game = game.with_withholding(WithholdingSchedule::every(period));
            reference.withholding = Some(WithholdingSchedule::every(period));
        }

        let mut game_rng = Xoshiro256StarStar::new(seed);
        let mut ref_rng = Xoshiro256StarStar::new(seed);
        for step in 0..steps {
            game.step(&mut game_rng);
            reference.step(&mut ref_rng);
            for i in 0..m {
                prop_assert_eq!(
                    game.stake(i).to_bits(),
                    reference.stakes[i].to_bits(),
                    "{} m={} stake[{}] diverged at step {}", name, m, i, step
                );
                prop_assert_eq!(
                    game.earned(i).to_bits(),
                    reference.earned[i].to_bits(),
                    "{} m={} earned[{}] diverged at step {}", name, m, i, step
                );
            }
            prop_assert_eq!(&game_rng, &ref_rng, "RNG streams must stay aligned");
        }
    }

    /// The single-miner trajectory fast path consumes the RNG identically
    /// to the all-miner path and reports the same miner-0 curve.
    #[test]
    fn single_trajectory_matches_all_miner_column(
        proto_idx in 0usize..11,
        m in 2usize..=12,
        seed in any::<u64>(),
    ) {
        let shares = paper_multi_miner(m, 0.2);
        let (_, spec) = protocol_specs().swap_remove(proto_idx);
        let checkpoints = [7u64, 40, 90];

        let mut single = MiningGame::new(
            registry::construct(&spec, &shares).expect("constructs"),
            &shares,
        );
        let mut single_rng = Xoshiro256StarStar::new(seed);
        let traj = single.run_with_checkpoints(&checkpoints, &mut single_rng);

        let mut all = MiningGame::new(
            registry::construct(&spec, &shares).expect("constructs"),
            &shares,
        );
        let mut all_rng = Xoshiro256StarStar::new(seed);
        let columns = all.run_with_checkpoints_all(&checkpoints, &mut all_rng);

        prop_assert_eq!(&traj.checkpoints, &columns[0].checkpoints);
        for (a, b) in traj.values.iter().zip(&columns[0].values) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        prop_assert_eq!(&single_rng, &all_rng);
    }
}
