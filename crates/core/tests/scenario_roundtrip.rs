//! Property tests for the scenario text format and registry: randomly
//! generated specs must (1) print to text that parses back to the *same*
//! value (`parse(print(spec)) == spec`), (2) keep their fingerprint across
//! the round-trip, and (3) construct through the protocol registry.

use fairness_core::miner::two_miner;
use fairness_core::registry;
use fairness_core::scenario::text::parse_scenarios;
use fairness_core::scenario::{
    print_scenarios, Checkpoints, ProtocolSpec, ScenarioSpec, SharesSpec,
};
use proptest::prelude::*;

/// One of the eight base protocols, parameterized by the sampled values.
fn base_protocol(selector: u8, w: f64, v: f64, shards: u8) -> ProtocolSpec {
    match selector % 8 {
        0 => ProtocolSpec::new("pow").with("w", w),
        1 => ProtocolSpec::new("ml-pos").with("w", w),
        2 => ProtocolSpec::new("sl-pos").with("w", w),
        3 => ProtocolSpec::new("fsl-pos").with("w", w),
        4 => ProtocolSpec::new("c-pos")
            .with("w", w)
            .with("v", v)
            .with("shards", f64::from(shards)),
        5 => ProtocolSpec::new("neo").with("w", w),
        6 => ProtocolSpec::new("algorand").with("v", w),
        _ => ProtocolSpec::new("eos").with("w", w).with("v", v),
    }
}

/// Optionally wraps the base in one of the registry's adapters. Only
/// single-winner bases take the adversary adapter (the machine panics on
/// reward-splitting protocols by design), so the adversary arm reuses a
/// single-winner inner.
fn protocol(
    selector: u8,
    adapter: u8,
    w: f64,
    v: f64,
    shards: u8,
    gamma: f64,
    tries: u32,
) -> ProtocolSpec {
    let base = base_protocol(selector, w, v, shards);
    match adapter % 4 {
        0 => base,
        1 => ProtocolSpec::new("cash-out")
            .with("inner", base)
            .with("miner", 0.0)
            .with("stake", 0.25),
        2 => ProtocolSpec::new("mining-pool")
            .with("inner", base)
            .with("members", vec![0.0, 1.0]),
        _ => {
            let single_winner = base_protocol(selector % 4, w, 0.0, 1);
            let strategy = match tries % 3 {
                0 => ProtocolSpec::new("honest"),
                1 => ProtocolSpec::new("selfish-mining").with("gamma", gamma),
                _ => ProtocolSpec::new("stake-grinding").with("tries", f64::from(tries)),
            };
            ProtocolSpec::new("adversary")
                .with("inner", single_winner)
                .with("strategy", strategy)
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn scenario(
    selector: u8,
    adapter: u8,
    w: f64,
    v: f64,
    shards: u8,
    gamma: f64,
    tries: u32,
    a: f64,
    period: u64,
    reps: usize,
    horizon: u64,
    count: usize,
    flavor: u8,
    flags: u8,
) -> ScenarioSpec {
    let checkpoints = match flavor % 3 {
        0 => Checkpoints::Linear { horizon, count },
        1 => Checkpoints::Log {
            horizon,
            per_decade: count.clamp(1, 8),
        },
        _ => {
            let step = (horizon / count as u64).max(1);
            Checkpoints::Explicit((1..=count as u64).map(|i| i * step).collect())
        }
    };
    let mut builder = ScenarioSpec::builder(
        format!("prop {selector}-{adapter}-{flavor} a={a}"),
        protocol(selector, adapter, w, v, shards, gamma, tries),
    )
    .shares(&two_miner(a))
    .checkpoints(checkpoints);
    if flags & 1 != 0 {
        builder = builder.repetitions(reps);
    }
    if flags & 2 != 0 {
        builder = builder.withholding(period);
    }
    if flags & 4 != 0 {
        let engine = ["pow", "ml-pos", "sl-pos", "fsl-pos", "c-pos"][(flags >> 3) as usize % 5];
        builder = builder.system(engine, horizon.max(10), u64::from(flags));
    }
    builder.build()
}

proptest! {
    #[test]
    fn parse_print_round_trips_and_preserves_fingerprints(
        selector in 0u8..8,
        adapter in 0u8..4,
        w in 1e-6f64..0.2,
        v in 0.0f64..0.5,
        shards in 1u8..65,
        gamma in 0.0f64..1.0,
        tries in 1u32..9,
        a in 0.01f64..0.99,
        period in 1u64..5000,
        reps in 1usize..20_000,
        horizon in 10u64..100_000,
        count in 1usize..40,
        flavor in 0u8..3,
        flags in 0u8..64,
    ) {
        let spec = scenario(
            selector, adapter, w, v, shards, gamma, tries, a, period, reps, horizon, count,
            flavor, flags,
        );
        let text = print_scenarios(std::slice::from_ref(&spec));
        let parsed = parse_scenarios(&text).expect("canonical text parses");
        prop_assert_eq!(&parsed, &vec![spec.clone()], "round-trip changed the spec:\n{}", text);
        prop_assert_eq!(parsed[0].fingerprint(), spec.fingerprint());
        // Printing is a fixed point (canonical form).
        prop_assert_eq!(print_scenarios(&parsed), text);
    }

    #[test]
    fn generated_specs_construct_through_the_registry(
        selector in 0u8..8,
        adapter in 0u8..4,
        w in 1e-6f64..0.2,
        v in 0.0f64..0.5,
        shards in 1u8..65,
        gamma in 0.0f64..1.0,
        tries in 1u32..9,
        a in 0.01f64..0.99,
    ) {
        let spec = scenario(
            selector, adapter, w, v, shards, gamma, tries, a, 100, 10, 1000, 5, 0, 0,
        );
        let protocol = registry::construct(&spec.protocol, &spec.initial_shares());
        prop_assert!(
            protocol.is_ok(),
            "spec failed to construct: {} ({:?})",
            spec.protocol,
            protocol.err()
        );
    }

    #[test]
    fn multi_scenario_files_round_trip(
        a1 in 0.01f64..0.99,
        a2 in 0.01f64..0.99,
        w in 1e-6f64..0.2,
    ) {
        let specs = vec![
            scenario(0, 0, w, 0.0, 1, 0.0, 1, a1, 100, 10, 1000, 5, 0, 1),
            scenario(2, 3, w, 0.0, 1, 0.5, 2, a2, 100, 10, 2000, 7, 2, 0),
        ];
        let text = print_scenarios(&specs);
        let parsed = parse_scenarios(&text).expect("two-block file parses");
        prop_assert_eq!(parsed, specs);
    }
}

/// A repeated key must be rejected everywhere a spec can enter the system:
/// the `.scn` parser (with the offending line number), `validate()` on
/// builder-made specs, and the registry's argument check. Constructors read
/// the first occurrence, so a silently-accepted duplicate would diverge from
/// what the printed form round-trips to.
#[test]
fn duplicate_parameters_are_rejected_at_every_layer() {
    // Parser: duplicate protocol parameter, error names the line.
    let text = "\
scenario \"dup\" {
  protocol = pow(w = 0.01, w = 0.02)
  shares = [0.2, 0.8]
  checkpoints = linear(1000, 5)
}
";
    let err = parse_scenarios(text).expect_err("duplicate parameter must not parse");
    let message = err.to_string();
    assert!(message.contains("line 2"), "no line number in: {message}");
    assert!(
        message.contains("duplicate"),
        "not a duplicate error: {message}"
    );

    // Parser: duplicate scenario-level field.
    let text = "\
scenario \"dup\" {
  protocol = pow(w = 0.01)
  shares = [0.2, 0.8]
  shares = [0.5, 0.5]
  checkpoints = linear(1000, 5)
}
";
    let err = parse_scenarios(text).expect_err("duplicate field must not parse");
    let message = err.to_string();
    assert!(message.contains("line 4"), "no line number in: {message}");
    assert!(
        message.contains("duplicate"),
        "not a duplicate error: {message}"
    );

    // Builder path: validate() walks the protocol tree. (The builder's
    // `build()` itself panics on invalid specs, so assemble one directly.)
    let spec = ScenarioSpec {
        name: "dup".to_owned(),
        protocol: ProtocolSpec::new("pow").with("w", 0.01).with("w", 0.02),
        shares: SharesSpec::Explicit(two_miner(0.2)),
        checkpoints: Checkpoints::Linear {
            horizon: 1000,
            count: 5,
        },
        repetitions: None,
        withholding: None,
        system: None,
    };
    let error = spec
        .validate()
        .expect_err("validate must reject duplicates");
    assert_eq!(error.code(), "duplicate-param");
    let message = error.to_string();
    assert!(
        message.contains('w'),
        "message should name the key: {message}"
    );

    // Registry: construction rejects duplicates even without validate().
    let err = registry::construct(
        &ProtocolSpec::new("pow").with("w", 0.01).with("w", 0.02),
        &two_miner(0.2),
    )
    .expect_err("registry must reject duplicates");
    let message = err.to_string();
    assert!(
        message.contains("more than once"),
        "unexpected registry error: {message}"
    );
}
