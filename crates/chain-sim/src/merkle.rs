//! Merkle trees over transaction hashes.
//!
//! Block headers commit to their transaction set through a Merkle root
//! (`Hash(nonce, merkle root, previous hash)` in the paper's PoW puzzle).
//! The tree follows the Bitcoin convention: an odd node count duplicates the
//! last node at each level.

use crate::hash::{Hash256, HashBuilder};

/// A Merkle tree built over a list of leaf hashes.
#[derive(Debug, Clone)]
pub struct MerkleTree {
    /// `levels[0]` = leaves, last level = root (length 1).
    levels: Vec<Vec<Hash256>>,
}

/// One step of a Merkle inclusion proof.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProofStep {
    /// Sibling hash combined at this level.
    pub sibling: Hash256,
    /// Whether the sibling sits to the right of the running hash.
    pub sibling_is_right: bool,
}

impl MerkleTree {
    /// Builds a tree from leaf hashes. An empty leaf set hashes to a
    /// distinguished empty root.
    #[must_use]
    pub fn build(leaves: &[Hash256]) -> Self {
        if leaves.is_empty() {
            return Self {
                levels: vec![vec![Self::empty_root()]],
            };
        }
        let mut levels = vec![leaves.to_vec()];
        while levels.last().expect("non-empty").len() > 1 {
            let prev = levels.last().expect("non-empty");
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            for pair in prev.chunks(2) {
                let left = pair[0];
                let right = if pair.len() == 2 { pair[1] } else { pair[0] };
                next.push(Self::combine(&left, &right));
            }
            levels.push(next);
        }
        Self { levels }
    }

    /// The root committed into block headers.
    #[must_use]
    pub fn root(&self) -> Hash256 {
        self.levels.last().expect("tree has a root")[0]
    }

    /// The root of an empty transaction set.
    #[must_use]
    pub fn empty_root() -> Hash256 {
        HashBuilder::new("merkle-empty").finish()
    }

    /// Number of leaves.
    #[must_use]
    pub fn leaf_count(&self) -> usize {
        if self.levels.len() == 1
            && self.levels[0].len() == 1
            && self.levels[0][0] == Self::empty_root()
        {
            0
        } else {
            self.levels[0].len()
        }
    }

    /// Produces an inclusion proof for leaf `index`.
    ///
    /// # Panics
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn prove(&self, index: usize) -> Vec<ProofStep> {
        assert!(
            index < self.leaf_count(),
            "leaf index {index} out of range ({} leaves)",
            self.leaf_count()
        );
        let mut proof = Vec::new();
        let mut idx = index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sibling_idx = if idx & 1 == 0 { idx + 1 } else { idx - 1 };
            let sibling = if sibling_idx < level.len() {
                level[sibling_idx]
            } else {
                // Odd count: the node is paired with itself.
                level[idx]
            };
            proof.push(ProofStep {
                sibling,
                sibling_is_right: idx & 1 == 0,
            });
            idx /= 2;
        }
        proof
    }

    /// Verifies an inclusion proof against a root.
    #[must_use]
    pub fn verify(root: &Hash256, leaf: &Hash256, proof: &[ProofStep]) -> bool {
        let mut acc = *leaf;
        for step in proof {
            acc = if step.sibling_is_right {
                Self::combine(&acc, &step.sibling)
            } else {
                Self::combine(&step.sibling, &acc)
            };
        }
        acc == *root
    }

    fn combine(left: &Hash256, right: &Hash256) -> Hash256 {
        HashBuilder::new("merkle-node")
            .hash(left)
            .hash(right)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(i: u64) -> Hash256 {
        HashBuilder::new("leaf").u64(i).finish()
    }

    #[test]
    fn empty_tree_distinguished_root() {
        let t = MerkleTree::build(&[]);
        assert_eq!(t.root(), MerkleTree::empty_root());
        assert_eq!(t.leaf_count(), 0);
    }

    #[test]
    fn single_leaf_root_is_leaf() {
        let l = leaf(1);
        let t = MerkleTree::build(&[l]);
        assert_eq!(t.root(), l);
        assert_eq!(t.leaf_count(), 1);
    }

    #[test]
    fn root_changes_with_any_leaf() {
        let leaves: Vec<Hash256> = (0..8).map(leaf).collect();
        let base = MerkleTree::build(&leaves).root();
        for i in 0..8 {
            let mut tampered = leaves.clone();
            tampered[i] = leaf(100 + i as u64);
            assert_ne!(MerkleTree::build(&tampered).root(), base, "leaf {i}");
        }
    }

    #[test]
    fn proofs_verify_for_all_leaves_and_sizes() {
        for n in 1..=17usize {
            let leaves: Vec<Hash256> = (0..n as u64).map(leaf).collect();
            let t = MerkleTree::build(&leaves);
            for (i, l) in leaves.iter().enumerate() {
                let proof = t.prove(i);
                assert!(MerkleTree::verify(&t.root(), l, &proof), "n={n} leaf={i}");
            }
        }
    }

    #[test]
    fn proof_fails_for_wrong_leaf_or_root() {
        let leaves: Vec<Hash256> = (0..5).map(leaf).collect();
        let t = MerkleTree::build(&leaves);
        let proof = t.prove(2);
        assert!(!MerkleTree::verify(&t.root(), &leaf(99), &proof));
        assert!(!MerkleTree::verify(&leaf(0), &leaves[2], &proof));
    }

    #[test]
    fn proof_fails_if_step_flipped() {
        let leaves: Vec<Hash256> = (0..4).map(leaf).collect();
        let t = MerkleTree::build(&leaves);
        let mut proof = t.prove(0);
        proof[0].sibling_is_right = !proof[0].sibling_is_right;
        assert!(!MerkleTree::verify(&t.root(), &leaves[0], &proof));
    }

    #[test]
    fn order_matters() {
        let a = MerkleTree::build(&[leaf(1), leaf(2)]).root();
        let b = MerkleTree::build(&[leaf(2), leaf(1)]).root();
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn prove_rejects_bad_index() {
        let t = MerkleTree::build(&[leaf(0)]);
        let _ = t.prove(1);
    }
}
