//! Hash values and domain-separated hashing.
//!
//! [`Hash256`] wraps a 32-byte SHA-256 digest and converts losslessly to
//! [`U256`] so lottery comparisons (`Hash(…) < D·stake`) are exact 256-bit
//! arithmetic, matching the paper's model where `Hash(·)` is uniform on
//! `[0, 2²⁵⁶ − 1]`.
//!
//! [`HashBuilder`] provides domain separation: every hash in the simulator
//! names its purpose (`"pow-nonce"`, `"mlpos-kernel"`, …) so unrelated
//! lotteries can never collide structurally.

use crate::sha256::Sha256;
use crate::u256::U256;
use std::fmt;

/// A 256-bit hash value (SHA-256 digest).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Hash256(pub [u8; 32]);

impl Hash256 {
    /// The all-zero hash (used as the genesis parent).
    pub const ZERO: Hash256 = Hash256([0u8; 32]);

    /// Interprets the digest as a big-endian 256-bit integer.
    #[must_use]
    pub fn to_u256(&self) -> U256 {
        U256::from_be_bytes(self.0)
    }

    /// Interprets the digest as a uniform sample in `[0, 1)` — the paper's
    /// `Hash(·)/2²⁵⁶ ~ U(0, 1)` idealization.
    #[must_use]
    pub fn as_unit_f64(&self) -> f64 {
        self.to_u256().as_unit_f64()
    }

    /// Raw bytes.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Short hex prefix for logs.
    #[must_use]
    pub fn short_hex(&self) -> String {
        self.0[..4].iter().map(|b| format!("{b:02x}")).collect()
    }
}

impl fmt::Debug for Hash256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Hash256(")?;
        for b in &self.0 {
            write!(f, "{b:02x}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Hash256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

/// Builder for domain-separated hashes.
///
/// The domain string is length-prefixed and absorbed first, then each field
/// is absorbed with its length, so `u64(1).u64(2)` can never collide with
/// `u64(0x0000000100000002)`-style confusions.
#[derive(Debug, Clone)]
pub struct HashBuilder {
    inner: Sha256,
}

impl HashBuilder {
    /// Starts a hash in the given domain.
    #[must_use]
    pub fn new(domain: &str) -> Self {
        let mut inner = Sha256::new();
        inner.update(&(domain.len() as u64).to_le_bytes());
        inner.update(domain.as_bytes());
        Self { inner }
    }

    /// Absorbs a `u64`.
    #[must_use]
    pub fn u64(mut self, v: u64) -> Self {
        self.inner.update(&[8u8]);
        self.inner.update(&v.to_le_bytes());
        self
    }

    /// Absorbs a byte slice (length-prefixed).
    #[must_use]
    pub fn bytes(mut self, b: &[u8]) -> Self {
        self.inner.update(&(b.len() as u64).to_le_bytes());
        self.inner.update(b);
        self
    }

    /// Absorbs another hash.
    #[must_use]
    pub fn hash(self, h: &Hash256) -> Self {
        self.bytes(&h.0)
    }

    /// Finishes, producing the digest.
    #[must_use]
    pub fn finish(self) -> Hash256 {
        Hash256(self.inner.finalize())
    }

    /// Freezes the fields absorbed so far into a reusable midstate.
    ///
    /// Nonce grinding hashes the same prefix (domain, parent hash, public
    /// key) millions of times with only a trailing `u64` varying; a
    /// midstate pays the prefix's compressions and buffer copies **once**
    /// and each [`HashMidstate::finish_u64`] then costs a single
    /// compression. `builder.midstate().finish_u64(n)` is bit-identical
    /// to `builder.u64(n).finish()` by construction (same absorbed
    /// bytes), pinned by unit tests.
    #[must_use]
    pub fn midstate(self) -> HashMidstate {
        HashMidstate { inner: self.inner }
    }
}

/// A frozen [`HashBuilder`] prefix: completes digests for messages that
/// append one `u64` field to the captured prefix. See
/// [`HashBuilder::midstate`].
#[derive(Debug, Clone)]
pub struct HashMidstate {
    inner: Sha256,
}

impl HashMidstate {
    /// Digest of `prefix || u64(v)` — bit-identical to having called
    /// [`HashBuilder::u64`] then [`HashBuilder::finish`] on the captured
    /// builder.
    #[must_use]
    pub fn finish_u64(&self, v: u64) -> Hash256 {
        let mut h = self.inner.clone();
        // The u64 field framing of `HashBuilder::u64`.
        let mut field = [0u8; 9];
        field[0] = 8;
        field[1..].copy_from_slice(&v.to_le_bytes());
        h.update(&field);
        Hash256(h.finalize())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_is_deterministic() {
        let a = HashBuilder::new("test").u64(1).bytes(b"xyz").finish();
        let b = HashBuilder::new("test").u64(1).bytes(b"xyz").finish();
        assert_eq!(a, b);
    }

    #[test]
    fn domains_separate() {
        let a = HashBuilder::new("pow").u64(1).finish();
        let b = HashBuilder::new("pos").u64(1).finish();
        assert_ne!(a, b);
    }

    #[test]
    fn field_framing_prevents_collisions() {
        let a = HashBuilder::new("d").bytes(b"ab").bytes(b"c").finish();
        let b = HashBuilder::new("d").bytes(b"a").bytes(b"bc").finish();
        assert_ne!(a, b);
    }

    #[test]
    fn u256_conversion_is_big_endian() {
        let mut bytes = [0u8; 32];
        bytes[31] = 1; // lowest byte in BE
        let h = Hash256(bytes);
        assert_eq!(h.to_u256(), U256::ONE);
    }

    #[test]
    fn unit_f64_in_range_and_roughly_uniform() {
        let mut acc = 0.0;
        let n = 2000;
        for i in 0..n {
            let u = HashBuilder::new("uniform").u64(i).finish().as_unit_f64();
            assert!((0.0..1.0).contains(&u));
            acc += u;
        }
        let mean = acc / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn display_and_short_hex() {
        let h = HashBuilder::new("x").finish();
        assert_eq!(h.to_string().len(), 64);
        assert_eq!(h.short_hex().len(), 8);
        assert!(h.to_string().starts_with(&h.short_hex()));
    }

    #[test]
    fn zero_constant() {
        assert_eq!(Hash256::ZERO.to_u256(), U256::ZERO);
        assert_eq!(Hash256::ZERO.as_unit_f64(), 0.0);
    }

    #[test]
    fn midstate_grind_is_bit_identical_to_full_hash() {
        // Every prefix shape the engines use, plus block-boundary edges:
        // the midstate path must reproduce the direct builder bit-for-bit.
        let builders: Vec<fn() -> HashBuilder> = vec![
            || HashBuilder::new("pow-trial"),
            || {
                HashBuilder::new("pow-trial")
                    .hash(&HashBuilder::new("x").finish())
                    .hash(&HashBuilder::new("y").u64(9).finish())
            },
            || HashBuilder::new("d").bytes(&[0xab; 55]),
            || HashBuilder::new("d").bytes(&[0xab; 64]),
            || HashBuilder::new("d").bytes(&[0xab; 119]),
        ];
        for (bi, make) in builders.iter().enumerate() {
            let midstate = make().midstate();
            for nonce in [0u64, 1, 42, u64::MAX, 0x0102_0304_0506_0708] {
                assert_eq!(
                    midstate.finish_u64(nonce),
                    make().u64(nonce).finish(),
                    "builder {bi} nonce {nonce}"
                );
            }
        }
    }

    #[test]
    fn midstate_is_reusable() {
        let midstate = HashBuilder::new("grind").hash(&Hash256::ZERO).midstate();
        let a1 = midstate.finish_u64(7);
        let b = midstate.finish_u64(8);
        let a2 = midstate.finish_u64(7);
        assert_eq!(a1, a2, "grinding must not consume the midstate");
        assert_ne!(a1, b);
    }
}
