//! 256-bit unsigned integer arithmetic.
//!
//! Blockchain lotteries compare 256-bit hash outputs against difficulty
//! targets (`Hash(…) < D` in PoW, `Hash(…) < D·stake` in ML-PoS, and
//! `time = basetime·Hash(…)/stake` in SL-PoS), so the simulator needs real
//! 256-bit arithmetic: comparison, saturating/checked multiplication by
//! stake values, and division for the SL-PoS time function.
//!
//! The representation is four little-endian `u64` limbs.

// Limb loops index several arrays at once; iterator chains would obscure the
// carry propagation.
#![allow(clippy::needless_range_loop)]

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, BitAnd, BitOr, BitXor, Div, Mul, Rem, Shl, Shr, Sub};

/// A 256-bit unsigned integer (four little-endian 64-bit limbs).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct U256 {
    limbs: [u64; 4],
}

impl U256 {
    /// The value 0.
    pub const ZERO: U256 = U256 { limbs: [0; 4] };
    /// The value 1.
    pub const ONE: U256 = U256 {
        limbs: [1, 0, 0, 0],
    };
    /// The maximum value 2²⁵⁶ − 1.
    pub const MAX: U256 = U256 {
        limbs: [u64::MAX; 4],
    };

    /// Constructs from little-endian limbs.
    #[must_use]
    pub const fn from_limbs(limbs: [u64; 4]) -> Self {
        Self { limbs }
    }

    /// The little-endian limbs.
    #[must_use]
    pub const fn limbs(&self) -> [u64; 4] {
        self.limbs
    }

    /// Constructs from a `u64`.
    #[must_use]
    pub const fn from_u64(v: u64) -> Self {
        Self {
            limbs: [v, 0, 0, 0],
        }
    }

    /// Constructs from a `u128`.
    #[must_use]
    pub const fn from_u128(v: u128) -> Self {
        Self {
            limbs: [v as u64, (v >> 64) as u64, 0, 0],
        }
    }

    /// Constructs from 32 big-endian bytes (the natural byte order of hash
    /// outputs).
    #[must_use]
    pub fn from_be_bytes(bytes: [u8; 32]) -> Self {
        let mut limbs = [0u64; 4];
        for (i, limb) in limbs.iter_mut().enumerate() {
            let mut chunk = [0u8; 8];
            // limb 0 is least significant → last 8 bytes of the BE array.
            chunk.copy_from_slice(&bytes[32 - (i + 1) * 8..32 - i * 8]);
            *limb = u64::from_be_bytes(chunk);
        }
        Self { limbs }
    }

    /// Serializes to 32 big-endian bytes.
    #[must_use]
    pub fn to_be_bytes(self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for (i, limb) in self.limbs.iter().enumerate() {
            out[32 - (i + 1) * 8..32 - i * 8].copy_from_slice(&limb.to_be_bytes());
        }
        out
    }

    /// Whether the value is zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.limbs == [0; 4]
    }

    /// Truncates to `u64` (low limb); use only when the value is known to
    /// fit, e.g. after division by a large denominator.
    #[must_use]
    pub fn low_u64(&self) -> u64 {
        self.limbs[0]
    }

    /// Truncates to `u128` (low two limbs).
    #[must_use]
    pub fn low_u128(&self) -> u128 {
        (self.limbs[1] as u128) << 64 | self.limbs[0] as u128
    }

    /// Converts to `u64` if the value fits, else `None`.
    #[must_use]
    pub fn to_u64(&self) -> Option<u64> {
        if self.limbs[1] == 0 && self.limbs[2] == 0 && self.limbs[3] == 0 {
            Some(self.limbs[0])
        } else {
            None
        }
    }

    /// Number of leading zero bits.
    #[must_use]
    pub fn leading_zeros(&self) -> u32 {
        for i in (0..4).rev() {
            if self.limbs[i] != 0 {
                return (3 - i as u32) * 64 + self.limbs[i].leading_zeros();
            }
        }
        256
    }

    /// Number of significant bits (`256 − leading_zeros`).
    #[must_use]
    pub fn bits(&self) -> u32 {
        256 - self.leading_zeros()
    }

    /// Bit `i` (0 = least significant).
    #[must_use]
    pub fn bit(&self, i: u32) -> bool {
        debug_assert!(i < 256);
        (self.limbs[(i / 64) as usize] >> (i % 64)) & 1 == 1
    }

    /// Lossy conversion to `f64` (exact for values below 2⁵³, correctly
    /// scaled above). Useful for converting hash outputs to uniform floats.
    #[must_use]
    pub fn to_f64(self) -> f64 {
        let mut acc = 0.0f64;
        for i in (0..4).rev() {
            acc = acc * 2.0f64.powi(64) + self.limbs[i] as f64;
        }
        acc
    }

    /// Interprets the value as a uniform sample in `[0, 1)` by dividing by
    /// 2²⁵⁶ — the paper's idealization of `Hash(·)/2²⁵⁶ ~ U(0, 1)`.
    #[must_use]
    pub fn as_unit_f64(self) -> f64 {
        self.to_f64() / 2.0f64.powi(256)
    }

    /// Checked addition.
    #[must_use]
    pub fn checked_add(self, rhs: Self) -> Option<Self> {
        let (v, overflow) = self.overflowing_add(rhs);
        if overflow {
            None
        } else {
            Some(v)
        }
    }

    /// Overflowing addition.
    #[must_use]
    pub fn overflowing_add(self, rhs: Self) -> (Self, bool) {
        let mut limbs = [0u64; 4];
        let mut carry = false;
        for i in 0..4 {
            let (s1, c1) = self.limbs[i].overflowing_add(rhs.limbs[i]);
            let (s2, c2) = s1.overflowing_add(u64::from(carry));
            limbs[i] = s2;
            carry = c1 || c2;
        }
        (Self { limbs }, carry)
    }

    /// Wrapping addition (mod 2²⁵⁶).
    #[must_use]
    pub fn wrapping_add(self, rhs: Self) -> Self {
        self.overflowing_add(rhs).0
    }

    /// Checked subtraction (`None` on underflow).
    #[must_use]
    pub fn checked_sub(self, rhs: Self) -> Option<Self> {
        let (v, borrow) = self.overflowing_sub(rhs);
        if borrow {
            None
        } else {
            Some(v)
        }
    }

    /// Overflowing subtraction.
    #[must_use]
    pub fn overflowing_sub(self, rhs: Self) -> (Self, bool) {
        let mut limbs = [0u64; 4];
        let mut borrow = false;
        for i in 0..4 {
            let (d1, b1) = self.limbs[i].overflowing_sub(rhs.limbs[i]);
            let (d2, b2) = d1.overflowing_sub(u64::from(borrow));
            limbs[i] = d2;
            borrow = b1 || b2;
        }
        (Self { limbs }, borrow)
    }

    /// Saturating subtraction.
    #[must_use]
    pub fn saturating_sub(self, rhs: Self) -> Self {
        self.checked_sub(rhs).unwrap_or(Self::ZERO)
    }

    /// Checked multiplication (`None` on overflow).
    #[must_use]
    pub fn checked_mul(self, rhs: Self) -> Option<Self> {
        let (lo, hi) = self.widening_mul(rhs);
        if hi.is_zero() {
            Some(lo)
        } else {
            None
        }
    }

    /// Full 512-bit product as `(low 256 bits, high 256 bits)`.
    #[must_use]
    pub fn widening_mul(self, rhs: Self) -> (Self, Self) {
        let mut prod = [0u64; 8];
        for i in 0..4 {
            let mut carry = 0u128;
            for j in 0..4 {
                let cur =
                    prod[i + j] as u128 + self.limbs[i] as u128 * rhs.limbs[j] as u128 + carry;
                prod[i + j] = cur as u64;
                carry = cur >> 64;
            }
            prod[i + 4] = carry as u64;
        }
        (
            Self {
                limbs: [prod[0], prod[1], prod[2], prod[3]],
            },
            Self {
                limbs: [prod[4], prod[5], prod[6], prod[7]],
            },
        )
    }

    /// Wrapping multiplication (mod 2²⁵⁶).
    #[must_use]
    pub fn wrapping_mul(self, rhs: Self) -> Self {
        self.widening_mul(rhs).0
    }

    /// Saturating multiplication.
    #[must_use]
    pub fn saturating_mul(self, rhs: Self) -> Self {
        self.checked_mul(rhs).unwrap_or(Self::MAX)
    }

    /// Division and remainder via binary long division.
    ///
    /// # Panics
    /// Panics on division by zero.
    #[must_use]
    pub fn div_rem(self, divisor: Self) -> (Self, Self) {
        assert!(!divisor.is_zero(), "U256 division by zero");
        if self < divisor {
            return (Self::ZERO, self);
        }
        if divisor == Self::ONE {
            return (self, Self::ZERO);
        }
        // Fast path: both fit in u128.
        if self.limbs[2] == 0
            && self.limbs[3] == 0
            && divisor.limbs[2] == 0
            && divisor.limbs[3] == 0
        {
            let a = self.low_u128();
            let b = divisor.low_u128();
            return (Self::from_u128(a / b), Self::from_u128(a % b));
        }
        let shift = divisor.leading_zeros() - self.leading_zeros();
        let mut remainder = self;
        let mut quotient = Self::ZERO;
        let mut shifted = divisor << shift;
        for s in (0..=shift).rev() {
            if remainder >= shifted {
                remainder = remainder.wrapping_sub_unchecked(shifted);
                quotient = quotient.set_bit(s);
            }
            shifted = shifted >> 1u32;
        }
        (quotient, remainder)
    }

    fn wrapping_sub_unchecked(self, rhs: Self) -> Self {
        self.overflowing_sub(rhs).0
    }

    fn set_bit(mut self, i: u32) -> Self {
        self.limbs[(i / 64) as usize] |= 1u64 << (i % 64);
        self
    }

    /// `self * mul / div` computed without intermediate overflow using the
    /// 512-bit product. Used for ML-PoS target scaling (`D·stake`) and the
    /// SL-PoS time function (`basetime·hash/stake`).
    ///
    /// # Panics
    /// Panics if `div` is zero or the final quotient overflows 256 bits.
    #[must_use]
    pub fn mul_div(self, mul: Self, div: Self) -> Self {
        assert!(!div.is_zero(), "mul_div division by zero");
        let (lo, hi) = self.widening_mul(mul);
        if hi.is_zero() {
            return lo.div_rem(div).0;
        }
        // 512-bit / 256-bit long division, bit by bit over the 512-bit value.
        assert!(hi < div, "mul_div quotient does not fit in 256 bits");
        let mut rem = Self::ZERO;
        let mut quot = Self::ZERO;
        for i in (0..512).rev() {
            // rem = rem << 1 | bit_i(hi:lo)
            rem = rem << 1u32;
            let bit = if i >= 256 { hi.bit(i - 256) } else { lo.bit(i) };
            if bit {
                rem = rem | Self::ONE;
            }
            if rem >= div {
                rem = rem.wrapping_sub_unchecked(div);
                if i < 256 {
                    quot = quot.set_bit(i);
                }
                // Bits >= 256 cannot be set because hi < div.
            }
        }
        quot
    }

    /// Parses a hexadecimal string (optionally `0x`-prefixed).
    #[must_use]
    pub fn from_hex(s: &str) -> Option<Self> {
        let s = s.strip_prefix("0x").unwrap_or(s);
        if s.is_empty() || s.len() > 64 {
            return None;
        }
        let mut value = Self::ZERO;
        for c in s.chars() {
            let digit = c.to_digit(16)? as u64;
            value = (value << 4u32) | Self::from_u64(digit);
        }
        Some(value)
    }
}

impl Ord for U256 {
    fn cmp(&self, other: &Self) -> Ordering {
        for i in (0..4).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl PartialOrd for U256 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Add for U256 {
    type Output = U256;
    fn add(self, rhs: Self) -> Self {
        self.checked_add(rhs).expect("U256 addition overflow")
    }
}

impl Sub for U256 {
    type Output = U256;
    fn sub(self, rhs: Self) -> Self {
        self.checked_sub(rhs).expect("U256 subtraction underflow")
    }
}

impl Mul for U256 {
    type Output = U256;
    fn mul(self, rhs: Self) -> Self {
        self.checked_mul(rhs).expect("U256 multiplication overflow")
    }
}

impl Div for U256 {
    type Output = U256;
    fn div(self, rhs: Self) -> Self {
        self.div_rem(rhs).0
    }
}

impl Rem for U256 {
    type Output = U256;
    fn rem(self, rhs: Self) -> Self {
        self.div_rem(rhs).1
    }
}

impl Shl<u32> for U256 {
    type Output = U256;
    fn shl(self, shift: u32) -> Self {
        if shift >= 256 {
            return Self::ZERO;
        }
        let word_shift = (shift / 64) as usize;
        let bit_shift = shift % 64;
        let mut limbs = [0u64; 4];
        for i in (word_shift..4).rev() {
            limbs[i] = self.limbs[i - word_shift] << bit_shift;
            if bit_shift > 0 && i > word_shift {
                limbs[i] |= self.limbs[i - word_shift - 1] >> (64 - bit_shift);
            }
        }
        Self { limbs }
    }
}

impl Shr<u32> for U256 {
    type Output = U256;
    fn shr(self, shift: u32) -> Self {
        if shift >= 256 {
            return Self::ZERO;
        }
        let word_shift = (shift / 64) as usize;
        let bit_shift = shift % 64;
        let mut limbs = [0u64; 4];
        for i in 0..4 - word_shift {
            limbs[i] = self.limbs[i + word_shift] >> bit_shift;
            if bit_shift > 0 && i + word_shift + 1 < 4 {
                limbs[i] |= self.limbs[i + word_shift + 1] << (64 - bit_shift);
            }
        }
        Self { limbs }
    }
}

impl BitAnd for U256 {
    type Output = U256;
    fn bitand(self, rhs: Self) -> Self {
        let mut limbs = [0u64; 4];
        for i in 0..4 {
            limbs[i] = self.limbs[i] & rhs.limbs[i];
        }
        Self { limbs }
    }
}

impl BitOr for U256 {
    type Output = U256;
    fn bitor(self, rhs: Self) -> Self {
        let mut limbs = [0u64; 4];
        for i in 0..4 {
            limbs[i] = self.limbs[i] | rhs.limbs[i];
        }
        Self { limbs }
    }
}

impl BitXor for U256 {
    type Output = U256;
    fn bitxor(self, rhs: Self) -> Self {
        let mut limbs = [0u64; 4];
        for i in 0..4 {
            limbs[i] = self.limbs[i] ^ rhs.limbs[i];
        }
        Self { limbs }
    }
}

impl From<u64> for U256 {
    fn from(v: u64) -> Self {
        Self::from_u64(v)
    }
}

impl From<u128> for U256 {
    fn from(v: u128) -> Self {
        Self::from_u128(v)
    }
}

impl fmt::Debug for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "U256(0x")?;
        let mut leading = true;
        for i in (0..4).rev() {
            if leading {
                if self.limbs[i] == 0 && i > 0 {
                    continue;
                }
                write!(f, "{:x}", self.limbs[i])?;
                leading = false;
            } else {
                write!(f, "{:016x}", self.limbs[i])?;
            }
        }
        write!(f, ")")
    }
}

impl fmt::Display for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Decimal display by repeated division by 10^19 (largest power of
        // ten in u64).
        if self.is_zero() {
            return write!(f, "0");
        }
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let mut parts: Vec<u64> = Vec::new();
        let mut v = *self;
        while !v.is_zero() {
            let (q, r) = v.div_rem(U256::from_u64(CHUNK));
            parts.push(r.low_u64());
            v = q;
        }
        write!(f, "{}", parts.pop().expect("non-zero has digits"))?;
        for p in parts.iter().rev() {
            write!(f, "{p:019}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_constants() {
        assert!(U256::ZERO.is_zero());
        assert_eq!(U256::ONE.low_u64(), 1);
        assert_eq!(U256::MAX.leading_zeros(), 0);
        assert_eq!(U256::ZERO.leading_zeros(), 256);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = U256::from_u128(0x_dead_beef_cafe_babe_1234_5678_9abc_def0);
        let b = U256::from_u64(0x_ffff_ffff_ffff_ffff);
        assert_eq!((a + b) - b, a);
    }

    #[test]
    fn add_carries_across_limbs() {
        let a = U256::from_limbs([u64::MAX, u64::MAX, 0, 0]);
        let one = U256::ONE;
        let sum = a + one;
        assert_eq!(sum.limbs(), [0, 0, 1, 0]);
    }

    #[test]
    fn overflow_detection() {
        assert!(U256::MAX.checked_add(U256::ONE).is_none());
        assert!(U256::ZERO.checked_sub(U256::ONE).is_none());
        let half = U256::ONE << 128u32;
        assert!(half.checked_mul(half).is_none()); // 2^256 overflows
        assert_eq!(U256::MAX.wrapping_add(U256::ONE), U256::ZERO);
        assert_eq!(U256::ZERO.saturating_sub(U256::ONE), U256::ZERO);
        assert_eq!(half.saturating_mul(half), U256::MAX);
    }

    #[test]
    fn mul_matches_u128_oracle() {
        let a = 0x1234_5678_9abc_def0u64;
        let b = 0x0fed_cba9_8765_4321u64;
        let prod = U256::from_u64(a) * U256::from_u64(b);
        assert_eq!(prod.low_u128(), a as u128 * b as u128);
    }

    #[test]
    fn widening_mul_max() {
        // (2^256 - 1)^2 = 2^512 - 2^257 + 1.
        let (lo, hi) = U256::MAX.widening_mul(U256::MAX);
        assert_eq!(lo, U256::ONE);
        assert_eq!(hi, U256::MAX - U256::ONE);
    }

    #[test]
    fn div_rem_small_and_large() {
        let a = U256::from_u64(1000);
        let b = U256::from_u64(7);
        let (q, r) = a.div_rem(b);
        assert_eq!(q.low_u64(), 142);
        assert_eq!(r.low_u64(), 6);

        let big = U256::MAX;
        let (q, r) = big.div_rem(U256::from_u64(3));
        // 2^256 - 1 is divisible by 3 (since 2^2 ≡ 1 mod 3 → 2^256 ≡ 1).
        assert!(r.is_zero());
        let back = q * U256::from_u64(3);
        assert_eq!(back, big);
    }

    #[test]
    fn div_by_larger_is_zero() {
        let (q, r) = U256::from_u64(5).div_rem(U256::from_u64(10));
        assert!(q.is_zero());
        assert_eq!(r.low_u64(), 5);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = U256::ONE.div_rem(U256::ZERO);
    }

    #[test]
    fn shifts() {
        let one = U256::ONE;
        assert_eq!((one << 255u32).leading_zeros(), 0);
        assert_eq!((one << 255u32) >> 255u32, one);
        assert_eq!(one << 256u32, U256::ZERO);
        let v = U256::from_u128(0x1_0000_0000_0000_0000);
        assert_eq!(v >> 64u32, U256::ONE);
        assert_eq!(U256::ONE << 64u32, v);
    }

    #[test]
    fn bit_access() {
        let v = U256::ONE << 130u32;
        assert!(v.bit(130));
        assert!(!v.bit(129));
        assert!(!v.bit(131));
        assert_eq!(v.bits(), 131);
    }

    #[test]
    fn be_bytes_roundtrip() {
        let v =
            U256::from_hex("0x0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef")
                .expect("valid hex");
        assert_eq!(U256::from_be_bytes(v.to_be_bytes()), v);
        // Leading byte should be 0x01.
        assert_eq!(v.to_be_bytes()[0], 0x01);
        assert_eq!(v.to_be_bytes()[31], 0xef);
    }

    #[test]
    fn hex_parsing() {
        assert_eq!(U256::from_hex("ff"), Some(U256::from_u64(255)));
        assert_eq!(U256::from_hex("0x10"), Some(U256::from_u64(16)));
        assert_eq!(U256::from_hex(""), None);
        assert_eq!(U256::from_hex("zz"), None);
        let too_long = "1".repeat(65);
        assert_eq!(U256::from_hex(&too_long), None);
    }

    #[test]
    fn display_decimal() {
        assert_eq!(U256::ZERO.to_string(), "0");
        assert_eq!(U256::from_u64(12345).to_string(), "12345");
        assert_eq!(
            U256::from_u128(123_456_789_012_345_678_901_234_567_890).to_string(),
            "123456789012345678901234567890"
        );
        // 2^256 - 1, known decimal expansion.
        assert_eq!(
            U256::MAX.to_string(),
            "115792089237316195423570985008687907853269984665640564039457584007913129639935"
        );
    }

    #[test]
    fn debug_hex_format() {
        assert_eq!(format!("{:?}", U256::from_u64(255)), "U256(0xff)");
    }

    #[test]
    fn mul_div_no_overflow_path() {
        // 100 * 50 / 25 = 200 via the narrow path.
        let r = U256::from_u64(100).mul_div(U256::from_u64(50), U256::from_u64(25));
        assert_eq!(r.low_u64(), 200);
    }

    #[test]
    fn mul_div_wide_path() {
        // (2^200) * (2^100) / (2^150) = 2^150 — the product needs 512 bits.
        let a = U256::ONE << 200u32;
        let b = U256::ONE << 100u32;
        let d = U256::ONE << 150u32;
        assert_eq!(a.mul_div(b, d), U256::ONE << 150u32);
    }

    #[test]
    fn mul_div_hash_scaling_use_case() {
        // SL-PoS: time = basetime * hash / stake with hash near 2^255.
        let hash = U256::ONE << 255u32;
        let basetime = U256::from_u64(60);
        let stake = U256::from_u64(1_000_000);
        let t = basetime.mul_div(hash, stake);
        // Compare against f64 estimate.
        let expect = 60.0 * (2.0f64.powi(255)) / 1.0e6;
        let rel = (t.to_f64() - expect).abs() / expect;
        assert!(rel < 1e-12, "rel err {rel}");
    }

    #[test]
    fn as_unit_f64_uniformity_endpoints() {
        assert_eq!(U256::ZERO.as_unit_f64(), 0.0);
        let max = U256::MAX.as_unit_f64();
        assert!(max < 1.0 + 1e-15 && max > 0.999_999);
        let half = (U256::ONE << 255u32).as_unit_f64();
        assert!((half - 0.5).abs() < 1e-15);
    }

    #[test]
    fn ordering() {
        let small = U256::from_u64(5);
        let big = U256::ONE << 128u32;
        assert!(small < big);
        assert!(big > small);
        assert_eq!(small.cmp(&small), Ordering::Equal);
        // Ordering decided by high limbs first.
        let a = U256::from_limbs([0, 0, 0, 1]);
        let b = U256::from_limbs([u64::MAX, u64::MAX, u64::MAX, 0]);
        assert!(a > b);
    }

    #[test]
    fn bitwise_ops() {
        let a = U256::from_u64(0b1100);
        let b = U256::from_u64(0b1010);
        assert_eq!((a & b).low_u64(), 0b1000);
        assert_eq!((a | b).low_u64(), 0b1110);
        assert_eq!((a ^ b).low_u64(), 0b0110);
    }

    #[test]
    fn to_u64_bounds() {
        assert_eq!(U256::from_u64(7).to_u64(), Some(7));
        assert_eq!((U256::ONE << 64u32).to_u64(), None);
    }
}
