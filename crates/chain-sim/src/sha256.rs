//! SHA-256 (FIPS 180-4), implemented from scratch.
//!
//! Every lottery in the simulated blockchains is driven by a cryptographic
//! hash — PoW grinds nonces against a target, ML-PoS hashes timestamps,
//! SL-PoS hashes public keys — so the substrate carries a real SHA-256
//! rather than a toy mixer. Verified against the NIST FIPS 180-4 example
//! vectors in the test suite.
//!
//! The compression function dispatches at runtime to the x86 SHA
//! extensions (`sha256rnds2`/`sha256msg1`/`sha256msg2`) when the CPU has
//! them — several times faster than the portable scalar rounds, which
//! remain the fallback on every other target. Both paths compute the
//! same FIPS 180-4 function, so digests are identical; the test suite
//! cross-checks them on CPUs where both are available.

/// Initial hash values: first 32 bits of the fractional parts of the square
/// roots of the first 8 primes.
const H0: [u32; 8] = [
    0x6a09_e667,
    0xbb67_ae85,
    0x3c6e_f372,
    0xa54f_f53a,
    0x510e_527f,
    0x9b05_688c,
    0x1f83_d9ab,
    0x5be0_cd19,
];

/// Round constants: first 32 bits of the fractional parts of the cube roots
/// of the first 64 primes.
const K: [u32; 64] = [
    0x428a_2f98,
    0x7137_4491,
    0xb5c0_fbcf,
    0xe9b5_dba5,
    0x3956_c25b,
    0x59f1_11f1,
    0x923f_82a4,
    0xab1c_5ed5,
    0xd807_aa98,
    0x1283_5b01,
    0x2431_85be,
    0x550c_7dc3,
    0x72be_5d74,
    0x80de_b1fe,
    0x9bdc_06a7,
    0xc19b_f174,
    0xe49b_69c1,
    0xefbe_4786,
    0x0fc1_9dc6,
    0x240c_a1cc,
    0x2de9_2c6f,
    0x4a74_84aa,
    0x5cb0_a9dc,
    0x76f9_88da,
    0x983e_5152,
    0xa831_c66d,
    0xb003_27c8,
    0xbf59_7fc7,
    0xc6e0_0bf3,
    0xd5a7_9147,
    0x06ca_6351,
    0x1429_2967,
    0x27b7_0a85,
    0x2e1b_2138,
    0x4d2c_6dfc,
    0x5338_0d13,
    0x650a_7354,
    0x766a_0abb,
    0x81c2_c92e,
    0x9272_2c85,
    0xa2bf_e8a1,
    0xa81a_664b,
    0xc24b_8b70,
    0xc76c_51a3,
    0xd192_e819,
    0xd699_0624,
    0xf40e_3585,
    0x106a_a070,
    0x19a4_c116,
    0x1e37_6c08,
    0x2748_774c,
    0x34b0_bcb5,
    0x391c_0cb3,
    0x4ed8_aa4a,
    0x5b9c_ca4f,
    0x682e_6ff3,
    0x748f_82ee,
    0x78a5_636f,
    0x84c8_7814,
    0x8cc7_0208,
    0x90be_fffa,
    0xa450_6ceb,
    0xbef9_a3f7,
    0xc671_78f2,
];

/// Incremental SHA-256 hasher.
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; 64],
    buffer_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    #[must_use]
    pub fn new() -> Self {
        Self {
            state: H0,
            buffer: [0u8; 64],
            buffer_len: 0,
            total_len: 0,
        }
    }

    /// Absorbs `data`.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self
            .total_len
            .checked_add(data.len() as u64)
            .expect("SHA-256 input exceeds u64 byte count");
        let mut input = data;
        // Fill a partial buffer first.
        if self.buffer_len > 0 {
            let take = (64 - self.buffer_len).min(input.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&input[..take]);
            self.buffer_len += take;
            input = &input[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            }
        }
        // Whole blocks straight from the input.
        while input.len() >= 64 {
            let (block, rest) = input.split_at(64);
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
            input = rest;
        }
        // Stash the tail.
        if !input.is_empty() {
            self.buffer[..input.len()].copy_from_slice(input);
            self.buffer_len = input.len();
        }
    }

    /// Finishes and returns the 32-byte digest.
    ///
    /// Padding is written in bulk (one `0x80`, a zero fill, the 64-bit
    /// big-endian bit length) rather than byte-at-a-time — finalization
    /// is on the nonce-grinding hot path, where it costs as much as the
    /// compression itself if done naively.
    #[must_use]
    pub fn finalize(mut self) -> [u8; 32] {
        let bit_len = self.total_len.wrapping_mul(8);
        let n = self.buffer_len;
        self.buffer[n] = 0x80;
        if n + 1 > 56 {
            // No room for the length in this block: pad it out, compress,
            // and start a fresh all-padding block.
            self.buffer[n + 1..].fill(0);
            let block = self.buffer;
            self.compress(&block);
            self.buffer.fill(0);
        } else {
            self.buffer[n + 1..56].fill(0);
        }
        self.buffer[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buffer;
        self.compress(&block);
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..(i + 1) * 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// The SHA-256 compression function over one 512-bit block:
    /// hardware-accelerated when the CPU supports it, portable scalar
    /// rounds otherwise.
    #[inline]
    fn compress(&mut self, block: &[u8; 64]) {
        #[cfg(target_arch = "x86_64")]
        if shani::available() {
            // SAFETY: `available()` verified the sha/ssse3/sse4.1
            // features at runtime.
            unsafe { shani::compress(&mut self.state, block) };
            return;
        }
        self.compress_scalar(block);
    }

    /// Portable scalar SHA-256 rounds (the reference path).
    fn compress_scalar(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let temp1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let temp2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(temp1);
            d = c;
            c = b;
            b = a;
            a = temp1.wrapping_add(temp2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// Hardware SHA-256 compression via the x86 SHA extensions.
///
/// A faithful transcription of the standard `sha256rnds2` schedule (as
/// published in Intel's SHA extensions programming reference): state is
/// repacked into the ABEF/CDGH lane order the instruction expects, the
/// message schedule advances four lanes at a time through
/// `sha256msg1`/`sha256msg2`, and the result is repacked to the
/// little-endian word order the scalar path stores. The NIST vectors and
/// a scalar cross-check test pin the equivalence.
#[cfg(target_arch = "x86_64")]
mod shani {
    use super::K;
    use core::arch::x86_64::{
        __m128i, _mm_add_epi32, _mm_alignr_epi8, _mm_blend_epi16, _mm_loadu_si128, _mm_set_epi64x,
        _mm_sha256msg1_epu32, _mm_sha256msg2_epu32, _mm_sha256rnds2_epu32, _mm_shuffle_epi32,
        _mm_shuffle_epi8, _mm_storeu_si128,
    };
    use std::sync::atomic::{AtomicU8, Ordering};

    /// Cached runtime feature probe: 0 = unknown, 1 = available, 2 = not.
    static DETECTED: AtomicU8 = AtomicU8::new(0);

    /// Whether the sha/ssse3/sse4.1 features needed by [`compress`] are
    /// present, probed once per process.
    #[inline]
    pub(super) fn available() -> bool {
        match DETECTED.load(Ordering::Relaxed) {
            1 => true,
            2 => false,
            _ => {
                let yes = std::is_x86_feature_detected!("sha")
                    && std::is_x86_feature_detected!("ssse3")
                    && std::is_x86_feature_detected!("sse4.1");
                DETECTED.store(if yes { 1 } else { 2 }, Ordering::Relaxed);
                yes
            }
        }
    }

    /// # Safety
    /// The caller must have verified the `sha`, `ssse3` and `sse4.1` CPU
    /// features (see [`available`]).
    #[target_feature(enable = "sha,sse2,ssse3,sse4.1")]
    pub(super) unsafe fn compress(state: &mut [u32; 8], block: &[u8; 64]) {
        // Repack [a,b,c,d] / [e,f,g,h] into the ABEF / CDGH pairs
        // `sha256rnds2` consumes.
        let dcba = _mm_loadu_si128(state.as_ptr().cast::<__m128i>());
        let hgfe = _mm_loadu_si128(state.as_ptr().add(4).cast::<__m128i>());
        let cdab = _mm_shuffle_epi32::<0xB1>(dcba);
        let efgh = _mm_shuffle_epi32::<0x1B>(hgfe);
        let mut abef = _mm_alignr_epi8::<8>(cdab, efgh);
        let mut cdgh = _mm_blend_epi16::<0xF0>(efgh, cdab);
        let abef_save = abef;
        let cdgh_save = cdgh;

        // Big-endian byte swap per 32-bit lane for the message loads.
        #[allow(clippy::cast_possible_wrap)]
        let flip = _mm_set_epi64x(
            0x0C0D_0E0F_0809_0A0Bu64 as i64,
            0x0405_0607_0001_0203u64 as i64,
        );
        let mut w = [
            _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr().cast::<__m128i>()), flip),
            _mm_shuffle_epi8(
                _mm_loadu_si128(block.as_ptr().add(16).cast::<__m128i>()),
                flip,
            ),
            _mm_shuffle_epi8(
                _mm_loadu_si128(block.as_ptr().add(32).cast::<__m128i>()),
                flip,
            ),
            _mm_shuffle_epi8(
                _mm_loadu_si128(block.as_ptr().add(48).cast::<__m128i>()),
                flip,
            ),
        ];

        for i in 0..16 {
            let m = if i < 4 {
                w[i]
            } else {
                // w[i] = msg2(msg1(w[i-4], w[i-3]) + alignr(w[i-1], w[i-2], 4), w[i-1])
                let fresh = _mm_sha256msg2_epu32(
                    _mm_add_epi32(
                        _mm_sha256msg1_epu32(w[i & 3], w[(i + 1) & 3]),
                        _mm_alignr_epi8::<4>(w[(i + 3) & 3], w[(i + 2) & 3]),
                    ),
                    w[(i + 3) & 3],
                );
                w[i & 3] = fresh;
                fresh
            };
            let wk = _mm_add_epi32(m, _mm_loadu_si128(K.as_ptr().add(4 * i).cast::<__m128i>()));
            cdgh = _mm_sha256rnds2_epu32(cdgh, abef, wk);
            abef = _mm_sha256rnds2_epu32(abef, cdgh, _mm_shuffle_epi32::<0x0E>(wk));
        }

        abef = _mm_add_epi32(abef, abef_save);
        cdgh = _mm_add_epi32(cdgh, cdgh_save);
        // Repack ABEF / CDGH back to [a,b,c,d] / [e,f,g,h].
        let feba = _mm_shuffle_epi32::<0x1B>(abef);
        let dchg = _mm_shuffle_epi32::<0xB1>(cdgh);
        let out_dcba = _mm_blend_epi16::<0xF0>(feba, dchg);
        let out_hgfe = _mm_alignr_epi8::<8>(dchg, feba);
        _mm_storeu_si128(state.as_mut_ptr().cast::<__m128i>(), out_dcba);
        _mm_storeu_si128(state.as_mut_ptr().add(4).cast::<__m128i>(), out_hgfe);
    }
}

/// One-shot convenience: SHA-256 of `data`.
#[must_use]
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// Double SHA-256 (Bitcoin-style block/transaction identifiers).
#[must_use]
pub fn sha256d(data: &[u8]) -> [u8; 32] {
    sha256(&sha256(data))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(digest: &[u8; 32]) -> String {
        digest.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn nist_vector_abc() {
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn nist_vector_empty() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn nist_vector_two_blocks() {
        assert_eq!(
            hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn nist_vector_million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&sha256(&data)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_equals_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let oneshot = sha256(&data);
        // Feed in irregular chunk sizes crossing block boundaries.
        let mut h = Sha256::new();
        let mut idx = 0;
        for size in [1usize, 7, 63, 64, 65, 128, 300, 382] {
            let end = (idx + size).min(data.len());
            h.update(&data[idx..end]);
            idx = end;
        }
        h.update(&data[idx..]);
        assert_eq!(h.finalize(), oneshot);
    }

    #[test]
    fn exact_block_boundary_padding() {
        // 55, 56 and 64 bytes exercise the padding edge cases.
        for len in [55usize, 56, 63, 64, 119, 120] {
            let data = vec![0xabu8; len];
            let d1 = sha256(&data);
            let mut h = Sha256::new();
            for b in &data {
                h.update(std::slice::from_ref(b));
            }
            assert_eq!(h.finalize(), d1, "length {len}");
        }
    }

    #[test]
    fn double_sha256_known_value() {
        // sha256d("hello") — Bitcoin-style.
        assert_eq!(
            hex(&sha256d(b"hello")),
            "9595c9df90075148eb06860365df33584b75bff782a510c6cd4883a419833d50"
        );
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        assert_ne!(sha256(b"miner A"), sha256(b"miner B"));
        assert_ne!(sha256(b""), sha256(b"\0"));
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn hardware_and_scalar_compressions_agree() {
        if !shani::available() {
            return; // nothing to cross-check on this CPU
        }
        let mut hw = Sha256::new();
        let mut scalar = Sha256::new();
        for round in 0u32..200 {
            let block: [u8; 64] =
                std::array::from_fn(|j| (round.wrapping_mul(31).wrapping_add(j as u32 * 7)) as u8);
            // SAFETY: guarded by `available()` above.
            unsafe { shani::compress(&mut hw.state, &block) };
            scalar.compress_scalar(&block);
            assert_eq!(hw.state, scalar.state, "diverged at block {round}");
        }
    }
}
