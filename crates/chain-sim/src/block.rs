//! Blocks and block headers.
//!
//! Headers carry exactly the fields the paper's lotteries hash over:
//! previous hash, Merkle root, timestamp (ML-PoS trials are per-timestamp),
//! nonce (PoW search variable), proposer, and the difficulty target.

use crate::account::Address;
use crate::hash::{Hash256, HashBuilder};
use crate::merkle::MerkleTree;
use crate::transaction::Transaction;
use crate::u256::U256;

/// A block header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockHeader {
    /// Height in the chain (genesis = 0).
    pub height: u64,
    /// Hash of the previous block's header.
    pub prev_hash: Hash256,
    /// Merkle root over the block's transactions.
    pub merkle_root: Hash256,
    /// Timestamp in simulation ticks.
    pub timestamp: u64,
    /// Difficulty target the proof was checked against.
    pub target: U256,
    /// PoW nonce (0 for PoS blocks).
    pub nonce: u64,
    /// Address of the proposer credited with the reward.
    pub proposer: Address,
}

impl BlockHeader {
    /// The header hash — the paper's `Hash(nonce, merkle root, previous
    /// hash)` with the remaining fields absorbed too.
    #[must_use]
    pub fn hash(&self) -> Hash256 {
        HashBuilder::new("block-header")
            .u64(self.height)
            .hash(&self.prev_hash)
            .hash(&self.merkle_root)
            .u64(self.timestamp)
            .hash(&Hash256(self.target.to_be_bytes()))
            .u64(self.nonce)
            .bytes(&self.proposer.0)
            .finish()
    }
}

/// A full block: header plus transaction body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// The header.
    pub header: BlockHeader,
    /// Transactions, coinbase first.
    pub transactions: Vec<Transaction>,
}

impl Block {
    /// Assembles a block: computes the Merkle root over `transactions` and
    /// fills the header.
    #[must_use]
    pub fn assemble(
        height: u64,
        prev_hash: Hash256,
        timestamp: u64,
        target: U256,
        nonce: u64,
        proposer: Address,
        transactions: Vec<Transaction>,
    ) -> Self {
        let leaves: Vec<Hash256> = transactions.iter().map(Transaction::id).collect();
        let merkle_root = MerkleTree::build(&leaves).root();
        Self {
            header: BlockHeader {
                height,
                prev_hash,
                merkle_root,
                timestamp,
                target,
                nonce,
                proposer,
            },
            transactions,
        }
    }

    /// The block identifier (header hash).
    #[must_use]
    pub fn hash(&self) -> Hash256 {
        self.header.hash()
    }

    /// Recomputes the Merkle root from the body and compares with the header.
    #[must_use]
    pub fn merkle_root_valid(&self) -> bool {
        let leaves: Vec<Hash256> = self.transactions.iter().map(Transaction::id).collect();
        MerkleTree::build(&leaves).root() == self.header.merkle_root
    }

    /// The coinbase transaction, if present as the first transaction.
    #[must_use]
    pub fn coinbase(&self) -> Option<&Transaction> {
        self.transactions.first().filter(|t| t.is_coinbase())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_block(height: u64, nonce: u64) -> Block {
        let proposer = Address::for_miner(0);
        let txs = vec![
            Transaction::coinbase(proposer, 50, height),
            Transaction::transfer(Address::for_miner(1), Address::for_miner(2), 10, 1, 0),
        ];
        Block::assemble(height, Hash256::ZERO, 100, U256::MAX, nonce, proposer, txs)
    }

    #[test]
    fn header_hash_changes_with_nonce() {
        let b1 = sample_block(1, 0);
        let b2 = sample_block(1, 1);
        assert_ne!(b1.hash(), b2.hash());
    }

    #[test]
    fn header_hash_changes_with_height() {
        assert_ne!(sample_block(1, 0).hash(), sample_block(2, 0).hash());
    }

    #[test]
    fn merkle_root_commits_to_body() {
        let mut b = sample_block(1, 0);
        assert!(b.merkle_root_valid());
        // Tamper with the body.
        b.transactions[1] =
            Transaction::transfer(Address::for_miner(1), Address::for_miner(2), 999, 1, 0);
        assert!(!b.merkle_root_valid());
    }

    #[test]
    fn coinbase_extraction() {
        let b = sample_block(1, 0);
        let cb = b.coinbase().expect("has coinbase");
        assert!(cb.is_coinbase());
        // A block whose first tx is not coinbase reports none.
        let txs = vec![Transaction::transfer(
            Address::for_miner(1),
            Address::for_miner(2),
            10,
            1,
            0,
        )];
        let b2 = Block::assemble(
            1,
            Hash256::ZERO,
            100,
            U256::MAX,
            0,
            Address::for_miner(0),
            txs,
        );
        assert!(b2.coinbase().is_none());
    }

    #[test]
    fn empty_body_uses_empty_merkle_root() {
        let b = Block::assemble(
            0,
            Hash256::ZERO,
            0,
            U256::MAX,
            0,
            Address::for_miner(0),
            vec![],
        );
        assert!(b.merkle_root_valid());
        assert_eq!(b.header.merkle_root, MerkleTree::empty_root());
    }
}
