#![warn(missing_docs)]

//! # chain-sim
//!
//! The blockchain substrate for the `blockchain-fairness` workspace — the
//! stand-in for the real systems the paper deploys on EC2 (Geth v1.9.11 for
//! PoW, Qtum v0.19.0.1 for ML-PoS, NXT v1.12.2 for SL-PoS, and the
//! Ethereum 2.0 spec for C-PoS).
//!
//! Everything is built from scratch:
//!
//! * [`u256`] — 256-bit arithmetic for hash/target comparisons;
//! * [`mod@sha256`] — FIPS 180-4 SHA-256 (NIST-vector tested);
//! * [`hash`] — domain-separated hashing, hash-as-uniform conversion;
//! * [`merkle`] — Merkle commitments over block bodies;
//! * [`account`], [`transaction`], [`block`], [`chain`], [`mempool`] — the
//!   ledger: exact integer stake accounting with supply invariants;
//! * [`difficulty`] — Bitcoin-style retargeting and NXT base-target rules;
//! * [`consensus`] — hash-level lottery engines for PoW, ML-PoS, SL-PoS,
//!   FSL-PoS and C-PoS, each implementing Section 2 of the paper
//!   mechanically (nonce grinding, kernel checks, hit values, shards);
//! * [`sim`] — a discrete-event, multi-node network simulation and the
//!   experiment runner used as the paper's "real system experiments".
//!
//! The closed-form mining games used for large Monte-Carlo ensembles live
//! in the `fairness-core` crate; its tests validate those closed forms
//! against these mechanisms.

pub mod account;
pub mod block;
pub mod chain;
pub mod codec;
pub mod consensus;
pub mod difficulty;
pub mod hash;
pub mod mempool;
pub mod merkle;
pub mod sha256;
pub mod sim;
pub mod transaction;
pub mod u256;

pub use account::{proportional_split, Account, Address, Ledger, LedgerError};
pub use block::{Block, BlockHeader};
pub use chain::{Chain, ChainError};
pub use codec::{decode_block, decode_chain, encode_block, encode_chain, DecodeError};
pub use consensus::{
    BlockLottery, CPosEngine, EpochOutcome, FslPosEngine, LotteryOutcome, MinerProfile,
    MlPosEngine, PowEngine, SlPosEngine,
};
pub use difficulty::{bitcoin_retarget, nxt_adjust_base_target, target_for_expected_interval};
pub use hash::{Hash256, HashBuilder, HashMidstate};
pub use mempool::Mempool;
pub use merkle::{MerkleTree, ProofStep};
pub use sha256::{sha256, sha256d, Sha256};
pub use sim::{
    experiment::{default_checkpoints, run_experiment},
    fork::{ForkNetConfig, ForkNetSim},
    network::{CPosSim, Engine, NetworkConfig, NetworkSim, PowRetarget},
    EventQueue, ExperimentConfig, ExperimentOutcome, ProtocolKind,
};
pub use transaction::{Transaction, TxKind};
pub use u256::U256;
