//! Fee-prioritized transaction pool.
//!
//! Keeps block bodies realistic: the network simulation injects synthetic
//! transfers, proposers pull the highest-fee transactions into blocks, and
//! Merkle roots therefore commit to non-trivial payloads.

use crate::hash::Hash256;
use crate::transaction::Transaction;
use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, HashSet};

/// A transaction pool ordered by fee (highest first), FIFO within a fee
/// level.
#[derive(Debug, Clone, Default)]
pub struct Mempool {
    /// (fee, arrival sequence) → transaction; iterate in reverse for
    /// highest-fee-first.
    by_priority: BTreeMap<(u64, u64), Transaction>,
    ids: HashSet<Hash256>,
    seq: u64,
    capacity: Option<usize>,
}

impl Mempool {
    /// Creates an unbounded pool.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a pool that holds at most `capacity` transactions; when full,
    /// the lowest-fee transaction is evicted on insert (if the newcomer pays
    /// more).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            capacity: Some(capacity),
            ..Self::default()
        }
    }

    /// Number of pending transactions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.by_priority.len()
    }

    /// Whether the pool is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.by_priority.is_empty()
    }

    /// Whether a transaction with this id is pending.
    #[must_use]
    pub fn contains(&self, id: &Hash256) -> bool {
        self.ids.contains(id)
    }

    /// Inserts a transaction. Returns `false` if it was a duplicate or was
    /// rejected because the pool is full of higher-fee transactions.
    pub fn insert(&mut self, tx: Transaction) -> bool {
        let id = tx.id();
        if self.ids.contains(&id) {
            return false;
        }
        if let Some(cap) = self.capacity {
            if self.by_priority.len() >= cap {
                // Evict the cheapest if the newcomer pays more.
                let (&(lowest_fee, lowest_seq), _) =
                    self.by_priority.iter().next().expect("pool non-empty");
                if tx.fee() <= lowest_fee {
                    return false;
                }
                let evicted = self
                    .by_priority
                    .remove(&(lowest_fee, lowest_seq))
                    .expect("entry exists");
                self.ids.remove(&evicted.id());
            }
        }
        // Negate sequence order inside a fee level? BTreeMap iterates
        // ascending; we pop from the back. Use reversed seq so that within a
        // fee level the earliest arrival is popped first.
        let key = (tx.fee(), u64::MAX - self.seq);
        self.seq += 1;
        match self.by_priority.entry(key) {
            Entry::Vacant(v) => {
                v.insert(tx);
                self.ids.insert(id);
                true
            }
            Entry::Occupied(_) => unreachable!("sequence numbers are unique"),
        }
    }

    /// Removes and returns up to `max` highest-fee transactions.
    pub fn take_highest_fee(&mut self, max: usize) -> Vec<Transaction> {
        let mut out = Vec::with_capacity(max.min(self.by_priority.len()));
        while out.len() < max {
            let Some((&key, _)) = self.by_priority.iter().next_back() else {
                break;
            };
            let tx = self.by_priority.remove(&key).expect("entry exists");
            self.ids.remove(&tx.id());
            out.push(tx);
        }
        out
    }

    /// Removes specific transactions (e.g. ones included in a received
    /// block).
    pub fn remove_all(&mut self, ids: &[Hash256]) {
        if ids.is_empty() {
            return;
        }
        let targets: HashSet<&Hash256> = ids.iter().collect();
        self.by_priority.retain(|_, tx| !targets.contains(&tx.id()));
        for id in ids {
            self.ids.remove(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::account::Address;

    fn tx(amount: u64, fee: u64, nonce: u64) -> Transaction {
        Transaction::transfer(
            Address::for_miner(0),
            Address::for_miner(1),
            amount,
            fee,
            nonce,
        )
    }

    #[test]
    fn highest_fee_first() {
        let mut pool = Mempool::new();
        pool.insert(tx(1, 5, 0));
        pool.insert(tx(2, 50, 1));
        pool.insert(tx(3, 20, 2));
        let picked = pool.take_highest_fee(2);
        assert_eq!(picked.len(), 2);
        assert_eq!(picked[0].fee(), 50);
        assert_eq!(picked[1].fee(), 20);
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn fifo_within_fee_level() {
        let mut pool = Mempool::new();
        let first = tx(10, 7, 0);
        let second = tx(20, 7, 1);
        pool.insert(first);
        pool.insert(second);
        let picked = pool.take_highest_fee(2);
        assert_eq!(picked[0], first);
        assert_eq!(picked[1], second);
    }

    #[test]
    fn duplicate_rejected() {
        let mut pool = Mempool::new();
        let t = tx(1, 1, 0);
        assert!(pool.insert(t));
        assert!(!pool.insert(t));
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn capacity_eviction() {
        let mut pool = Mempool::with_capacity(2);
        assert!(pool.insert(tx(1, 10, 0)));
        assert!(pool.insert(tx(2, 20, 1)));
        // Cheaper than everything: rejected.
        assert!(!pool.insert(tx(3, 5, 2)));
        assert_eq!(pool.len(), 2);
        // More expensive: evicts fee-10.
        assert!(pool.insert(tx(4, 30, 3)));
        assert_eq!(pool.len(), 2);
        let fees: Vec<u64> = pool.take_highest_fee(10).iter().map(|t| t.fee()).collect();
        assert_eq!(fees, vec![30, 20]);
    }

    #[test]
    fn remove_all_by_id() {
        let mut pool = Mempool::new();
        let a = tx(1, 1, 0);
        let b = tx(2, 2, 1);
        pool.insert(a);
        pool.insert(b);
        pool.remove_all(&[a.id()]);
        assert!(!pool.contains(&a.id()));
        assert!(pool.contains(&b.id()));
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn take_from_empty() {
        let mut pool = Mempool::new();
        assert!(pool.take_highest_fee(5).is_empty());
        assert!(pool.is_empty());
    }
}
