//! Transactions.
//!
//! Two kinds exist: user transfers (carried through the mempool into block
//! bodies, so Merkle roots commit to realistic payloads) and coinbase
//! rewards (the incentive under study). Authorization uses a hash-based
//! commitment in place of real signatures — signature schemes are outside
//! the paper's model and irrelevant to incentive dynamics (see DESIGN.md).

use crate::account::Address;
use crate::hash::{Hash256, HashBuilder};

/// Payload of a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxKind {
    /// A user transfer of `amount` atoms with a `fee` paid to the proposer.
    Transfer {
        /// Sender address.
        from: Address,
        /// Recipient address.
        to: Address,
        /// Amount transferred, in atoms.
        amount: u64,
        /// Fee paid to the block proposer, in atoms.
        fee: u64,
        /// Sender's account nonce.
        nonce: u64,
    },
    /// Block-reward issuance to the proposer (no sender; mints supply).
    Coinbase {
        /// Reward recipient.
        to: Address,
        /// Minted amount, in atoms.
        reward: u64,
        /// Block height, making each coinbase unique.
        height: u64,
    },
}

/// A transaction with its identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transaction {
    /// The payload.
    pub kind: TxKind,
    /// Commitment by the sender (stub signature; see module docs).
    pub auth: Hash256,
}

impl Transaction {
    /// Creates an authorized transfer.
    #[must_use]
    pub fn transfer(from: Address, to: Address, amount: u64, fee: u64, nonce: u64) -> Self {
        let kind = TxKind::Transfer {
            from,
            to,
            amount,
            fee,
            nonce,
        };
        let auth = Self::commitment(&kind);
        Self { kind, auth }
    }

    /// Creates a coinbase reward transaction.
    #[must_use]
    pub fn coinbase(to: Address, reward: u64, height: u64) -> Self {
        let kind = TxKind::Coinbase { to, reward, height };
        let auth = Self::commitment(&kind);
        Self { kind, auth }
    }

    /// The transaction identifier (hash of the canonical encoding).
    #[must_use]
    pub fn id(&self) -> Hash256 {
        HashBuilder::new("txid")
            .hash(&self.encode())
            .hash(&self.auth)
            .finish()
    }

    /// Fee offered to the proposer (0 for coinbase).
    #[must_use]
    pub fn fee(&self) -> u64 {
        match self.kind {
            TxKind::Transfer { fee, .. } => fee,
            TxKind::Coinbase { .. } => 0,
        }
    }

    /// Whether this is a coinbase transaction.
    #[must_use]
    pub fn is_coinbase(&self) -> bool {
        matches!(self.kind, TxKind::Coinbase { .. })
    }

    /// Verifies the authorization commitment.
    #[must_use]
    pub fn verify_auth(&self) -> bool {
        self.auth == Self::commitment(&self.kind)
    }

    /// Canonical encoding hash of the payload.
    fn encode(&self) -> Hash256 {
        match self.kind {
            TxKind::Transfer {
                from,
                to,
                amount,
                fee,
                nonce,
            } => HashBuilder::new("tx-transfer")
                .bytes(&from.0)
                .bytes(&to.0)
                .u64(amount)
                .u64(fee)
                .u64(nonce)
                .finish(),
            TxKind::Coinbase { to, reward, height } => HashBuilder::new("tx-coinbase")
                .bytes(&to.0)
                .u64(reward)
                .u64(height)
                .finish(),
        }
    }

    fn commitment(kind: &TxKind) -> Hash256 {
        // Stand-in for a signature: commitment under the sender's (or
        // issuer's) key domain.
        let payload = Self {
            kind: *kind,
            auth: Hash256::ZERO,
        }
        .encode();
        HashBuilder::new("tx-auth").hash(&payload).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_roundtrip() {
        let a = Address::for_miner(0);
        let b = Address::for_miner(1);
        let tx = Transaction::transfer(a, b, 100, 3, 0);
        assert_eq!(tx.fee(), 3);
        assert!(!tx.is_coinbase());
        assert!(tx.verify_auth());
    }

    #[test]
    fn coinbase_properties() {
        let tx = Transaction::coinbase(Address::for_miner(2), 50, 7);
        assert!(tx.is_coinbase());
        assert_eq!(tx.fee(), 0);
        assert!(tx.verify_auth());
    }

    #[test]
    fn ids_are_unique_per_content() {
        let a = Address::for_miner(0);
        let b = Address::for_miner(1);
        let t1 = Transaction::transfer(a, b, 100, 3, 0);
        let t2 = Transaction::transfer(a, b, 100, 3, 1); // different nonce
        let t3 = Transaction::transfer(a, b, 101, 3, 0); // different amount
        assert_ne!(t1.id(), t2.id());
        assert_ne!(t1.id(), t3.id());
        assert_eq!(t1.id(), Transaction::transfer(a, b, 100, 3, 0).id());
    }

    #[test]
    fn coinbases_unique_per_height() {
        let to = Address::for_miner(0);
        assert_ne!(
            Transaction::coinbase(to, 50, 1).id(),
            Transaction::coinbase(to, 50, 2).id()
        );
    }

    #[test]
    fn tampered_auth_detected() {
        let mut tx = Transaction::transfer(Address::for_miner(0), Address::for_miner(1), 5, 1, 0);
        tx.auth = Hash256::ZERO;
        assert!(!tx.verify_auth());
    }
}
