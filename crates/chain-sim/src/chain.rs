//! The block chain store: append-only, validated, with proposer statistics.

use crate::account::Address;
use crate::block::Block;
use crate::hash::Hash256;
use std::collections::HashMap;
use std::fmt;

/// Errors from chain validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainError {
    /// Block height is not `tip height + 1`.
    BadHeight {
        /// Height the chain expected.
        expected: u64,
        /// Height the block carried.
        got: u64,
    },
    /// Previous-hash link does not match the tip.
    BadParent,
    /// Merkle root does not commit to the body.
    BadMerkleRoot,
    /// Timestamp is not monotone non-decreasing.
    BadTimestamp,
    /// A transaction failed its authorization check.
    BadTransaction,
    /// The proof check supplied by the consensus engine failed.
    BadProof,
}

impl fmt::Display for ChainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainError::BadHeight { expected, got } => {
                write!(f, "bad height: expected {expected}, got {got}")
            }
            ChainError::BadParent => write!(f, "previous hash does not match tip"),
            ChainError::BadMerkleRoot => write!(f, "merkle root mismatch"),
            ChainError::BadTimestamp => write!(f, "non-monotone timestamp"),
            ChainError::BadTransaction => write!(f, "invalid transaction authorization"),
            ChainError::BadProof => write!(f, "consensus proof check failed"),
        }
    }
}

impl std::error::Error for ChainError {}

/// An append-only validated chain.
#[derive(Debug, Clone)]
pub struct Chain {
    blocks: Vec<Block>,
    by_hash: HashMap<Hash256, u64>,
    wins: HashMap<Address, u64>,
}

impl Chain {
    /// Creates a chain from a genesis block (validated structurally only).
    #[must_use]
    pub fn new(genesis: Block) -> Self {
        let mut chain = Self {
            blocks: Vec::new(),
            by_hash: HashMap::new(),
            wins: HashMap::new(),
        };
        chain.index(&genesis);
        chain.blocks.push(genesis);
        chain
    }

    fn index(&mut self, block: &Block) {
        self.by_hash.insert(block.hash(), block.header.height);
        if block.header.height > 0 {
            *self.wins.entry(block.header.proposer).or_insert(0) += 1;
        }
    }

    /// The tip block.
    #[must_use]
    pub fn tip(&self) -> &Block {
        self.blocks.last().expect("chain always has genesis")
    }

    /// Chain height (genesis = 0).
    #[must_use]
    pub fn height(&self) -> u64 {
        self.tip().header.height
    }

    /// Number of blocks including genesis.
    #[must_use]
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether only the genesis block exists.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.blocks.len() <= 1
    }

    /// Block at `height`.
    #[must_use]
    pub fn block_at(&self, height: u64) -> Option<&Block> {
        self.blocks.get(height as usize)
    }

    /// Looks a block up by hash.
    #[must_use]
    pub fn block_by_hash(&self, hash: &Hash256) -> Option<&Block> {
        self.by_hash.get(hash).and_then(|&h| self.block_at(h))
    }

    /// Number of non-genesis blocks proposed by `addr`.
    #[must_use]
    pub fn wins(&self, addr: &Address) -> u64 {
        self.wins.get(addr).copied().unwrap_or(0)
    }

    /// Fraction of non-genesis blocks proposed by `addr` — the paper's
    /// `λ_A` measured directly from chain data.
    #[must_use]
    pub fn win_fraction(&self, addr: &Address) -> f64 {
        let total = self.height();
        if total == 0 {
            return 0.0;
        }
        self.wins(addr) as f64 / total as f64
    }

    /// Validates and appends a block. `proof_check` is the engine-specific
    /// validity rule (e.g. `header hash < target` for PoW).
    pub fn try_append<F>(&mut self, block: Block, proof_check: F) -> Result<(), ChainError>
    where
        F: FnOnce(&Block) -> bool,
    {
        let tip = self.tip();
        let expected = tip.header.height + 1;
        if block.header.height != expected {
            return Err(ChainError::BadHeight {
                expected,
                got: block.header.height,
            });
        }
        if block.header.prev_hash != tip.hash() {
            return Err(ChainError::BadParent);
        }
        if block.header.timestamp < tip.header.timestamp {
            return Err(ChainError::BadTimestamp);
        }
        if !block.merkle_root_valid() {
            return Err(ChainError::BadMerkleRoot);
        }
        if !block.transactions.iter().all(Transactionlike::auth_ok) {
            return Err(ChainError::BadTransaction);
        }
        if !proof_check(&block) {
            return Err(ChainError::BadProof);
        }
        self.index(&block);
        self.blocks.push(block);
        Ok(())
    }

    /// Iterates over all blocks from genesis to tip.
    pub fn iter(&self) -> impl Iterator<Item = &Block> {
        self.blocks.iter()
    }
}

/// Small helper trait so `try_append` reads clearly.
trait Transactionlike {
    fn auth_ok(&self) -> bool;
}

impl Transactionlike for crate::transaction::Transaction {
    fn auth_ok(&self) -> bool {
        self.verify_auth()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transaction::Transaction;
    use crate::u256::U256;

    fn genesis() -> Block {
        Block::assemble(
            0,
            Hash256::ZERO,
            0,
            U256::MAX,
            0,
            Address::for_miner(0),
            vec![],
        )
    }

    fn child(parent: &Block, height: u64, proposer: usize) -> Block {
        let addr = Address::for_miner(proposer);
        Block::assemble(
            height,
            parent.hash(),
            parent.header.timestamp + 10,
            U256::MAX,
            0,
            addr,
            vec![Transaction::coinbase(addr, 50, height)],
        )
    }

    #[test]
    fn append_valid_blocks() {
        let g = genesis();
        let mut chain = Chain::new(g);
        let b1 = child(chain.tip(), 1, 1);
        chain.try_append(b1, |_| true).expect("append 1");
        let b2 = child(chain.tip(), 2, 2);
        chain.try_append(b2, |_| true).expect("append 2");
        assert_eq!(chain.height(), 2);
        assert_eq!(chain.len(), 3);
        assert!(!chain.is_empty());
    }

    #[test]
    fn rejects_bad_height() {
        let mut chain = Chain::new(genesis());
        let mut b = child(chain.tip(), 5, 1);
        b.header.height = 5;
        let err = chain.try_append(b, |_| true).expect_err("bad height");
        assert_eq!(
            err,
            ChainError::BadHeight {
                expected: 1,
                got: 5
            }
        );
    }

    #[test]
    fn rejects_bad_parent() {
        let mut chain = Chain::new(genesis());
        let other = genesis();
        let b = child(&other, 1, 1); // parent hash = genesis hash, fine...
                                     // Corrupt the parent link.
        let mut bad = b;
        bad.header.prev_hash = Hash256([9u8; 32]);
        assert_eq!(chain.try_append(bad, |_| true), Err(ChainError::BadParent));
    }

    #[test]
    fn rejects_merkle_tamper() {
        let mut chain = Chain::new(genesis());
        let mut b = child(chain.tip(), 1, 1);
        b.transactions
            .push(Transaction::coinbase(Address::for_miner(3), 1, 1));
        assert_eq!(
            chain.try_append(b, |_| true),
            Err(ChainError::BadMerkleRoot)
        );
    }

    #[test]
    fn rejects_failed_proof() {
        let mut chain = Chain::new(genesis());
        let b = child(chain.tip(), 1, 1);
        assert_eq!(chain.try_append(b, |_| false), Err(ChainError::BadProof));
    }

    #[test]
    fn rejects_time_regression() {
        let mut chain = Chain::new(genesis());
        let mut b = child(chain.tip(), 1, 1);
        b.header.timestamp = 0;
        // timestamp equal to parent is allowed; strictly smaller is not.
        let mut earlier = b.clone();
        earlier.header.timestamp = 0;
        // parent timestamp is 0, so 0 is allowed -> should pass other checks.
        // Rebuild with a parent at t=10 to test regression.
        let g2 = Block::assemble(
            0,
            Hash256::ZERO,
            10,
            U256::MAX,
            0,
            Address::for_miner(0),
            vec![],
        );
        let mut chain2 = Chain::new(g2);
        let mut late = child(chain2.tip(), 1, 1);
        late.header.timestamp = 5;
        // Merkle root unaffected by timestamp, so only timestamp check fires.
        assert_eq!(
            chain2.try_append(late, |_| true),
            Err(ChainError::BadTimestamp)
        );
        // Silence unused warnings from the first setup.
        let _ = chain.try_append(b, |_| true);
    }

    #[test]
    fn win_statistics() {
        let mut chain = Chain::new(genesis());
        for h in 1..=10u64 {
            let proposer = if h % 3 == 0 { 1 } else { 2 };
            let b = child(chain.tip(), h, proposer);
            chain.try_append(b, |_| true).expect("append");
        }
        let a1 = Address::for_miner(1);
        let a2 = Address::for_miner(2);
        assert_eq!(chain.wins(&a1), 3);
        assert_eq!(chain.wins(&a2), 7);
        assert!((chain.win_fraction(&a1) - 0.3).abs() < 1e-12);
        assert!((chain.win_fraction(&a2) - 0.7).abs() < 1e-12);
        // Genesis proposer gets no win credit.
        assert_eq!(chain.wins(&Address::for_miner(0)), 0);
    }

    #[test]
    fn lookup_by_hash() {
        let mut chain = Chain::new(genesis());
        let b1 = child(chain.tip(), 1, 1);
        let h1 = b1.hash();
        chain.try_append(b1, |_| true).expect("append");
        assert_eq!(chain.block_by_hash(&h1).expect("found").header.height, 1);
        assert!(chain.block_by_hash(&Hash256([1u8; 32])).is_none());
    }
}
