//! Wire-format serialization for blocks and transactions.
//!
//! A canonical, self-describing binary encoding (little-endian integers,
//! length-prefixed vectors) built on [`bytes`]. Real nodes gossip blocks
//! over the network and persist them to disk; the simulator's substrate
//! carries the same capability so chains can be snapshotted, diffed and
//! replayed. Round-trip fidelity is property-tested.

use crate::account::Address;
use crate::block::{Block, BlockHeader};
use crate::hash::Hash256;
use crate::transaction::{Transaction, TxKind};
use crate::u256::U256;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Errors from decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended before the structure was complete.
    UnexpectedEnd,
    /// A tag byte had no corresponding variant.
    BadTag(u8),
    /// A declared length exceeds sane bounds.
    LengthOutOfRange(u64),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::UnexpectedEnd => write!(f, "unexpected end of input"),
            DecodeError::BadTag(t) => write!(f, "unknown tag byte {t}"),
            DecodeError::LengthOutOfRange(n) => write!(f, "length {n} out of range"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Maximum transactions per decoded block (sanity bound against corrupt
/// length prefixes).
const MAX_TXS: u64 = 1 << 20;

fn need(buf: &impl Buf, n: usize) -> Result<(), DecodeError> {
    if buf.remaining() < n {
        Err(DecodeError::UnexpectedEnd)
    } else {
        Ok(())
    }
}

fn get_hash(buf: &mut impl Buf) -> Result<Hash256, DecodeError> {
    need(buf, 32)?;
    let mut h = [0u8; 32];
    buf.copy_to_slice(&mut h);
    Ok(Hash256(h))
}

fn get_address(buf: &mut impl Buf) -> Result<Address, DecodeError> {
    need(buf, 20)?;
    let mut a = [0u8; 20];
    buf.copy_to_slice(&mut a);
    Ok(Address(a))
}

fn get_u64(buf: &mut impl Buf) -> Result<u64, DecodeError> {
    need(buf, 8)?;
    Ok(buf.get_u64_le())
}

/// Encodes a transaction.
pub fn encode_transaction(tx: &Transaction, out: &mut BytesMut) {
    match tx.kind {
        TxKind::Transfer {
            from,
            to,
            amount,
            fee,
            nonce,
        } => {
            out.put_u8(0);
            out.put_slice(&from.0);
            out.put_slice(&to.0);
            out.put_u64_le(amount);
            out.put_u64_le(fee);
            out.put_u64_le(nonce);
        }
        TxKind::Coinbase { to, reward, height } => {
            out.put_u8(1);
            out.put_slice(&to.0);
            out.put_u64_le(reward);
            out.put_u64_le(height);
        }
    }
    out.put_slice(&tx.auth.0);
}

/// Decodes a transaction.
pub fn decode_transaction(buf: &mut impl Buf) -> Result<Transaction, DecodeError> {
    need(buf, 1)?;
    let tag = buf.get_u8();
    let kind = match tag {
        0 => {
            let from = get_address(buf)?;
            let to = get_address(buf)?;
            let amount = get_u64(buf)?;
            let fee = get_u64(buf)?;
            let nonce = get_u64(buf)?;
            TxKind::Transfer {
                from,
                to,
                amount,
                fee,
                nonce,
            }
        }
        1 => {
            let to = get_address(buf)?;
            let reward = get_u64(buf)?;
            let height = get_u64(buf)?;
            TxKind::Coinbase { to, reward, height }
        }
        other => return Err(DecodeError::BadTag(other)),
    };
    let auth = get_hash(buf)?;
    Ok(Transaction { kind, auth })
}

/// Encodes a block header.
pub fn encode_header(header: &BlockHeader, out: &mut BytesMut) {
    out.put_u64_le(header.height);
    out.put_slice(&header.prev_hash.0);
    out.put_slice(&header.merkle_root.0);
    out.put_u64_le(header.timestamp);
    out.put_slice(&header.target.to_be_bytes());
    out.put_u64_le(header.nonce);
    out.put_slice(&header.proposer.0);
}

/// Decodes a block header.
pub fn decode_header(buf: &mut impl Buf) -> Result<BlockHeader, DecodeError> {
    let height = get_u64(buf)?;
    let prev_hash = get_hash(buf)?;
    let merkle_root = get_hash(buf)?;
    let timestamp = get_u64(buf)?;
    need(buf, 32)?;
    let mut target_bytes = [0u8; 32];
    buf.copy_to_slice(&mut target_bytes);
    let target = U256::from_be_bytes(target_bytes);
    let nonce = get_u64(buf)?;
    let proposer = get_address(buf)?;
    Ok(BlockHeader {
        height,
        prev_hash,
        merkle_root,
        timestamp,
        target,
        nonce,
        proposer,
    })
}

/// Encodes a full block to bytes.
#[must_use]
pub fn encode_block(block: &Block) -> Bytes {
    let mut out = BytesMut::with_capacity(128 + block.transactions.len() * 96);
    encode_header(&block.header, &mut out);
    out.put_u64_le(block.transactions.len() as u64);
    for tx in &block.transactions {
        encode_transaction(tx, &mut out);
    }
    out.freeze()
}

/// Decodes a block and verifies its internal consistency (Merkle root and
/// transaction authorizations).
pub fn decode_block(mut buf: impl Buf) -> Result<Block, DecodeError> {
    let header = decode_header(&mut buf)?;
    let count = get_u64(&mut buf)?;
    if count > MAX_TXS {
        return Err(DecodeError::LengthOutOfRange(count));
    }
    let mut transactions = Vec::with_capacity(count as usize);
    for _ in 0..count {
        transactions.push(decode_transaction(&mut buf)?);
    }
    Ok(Block {
        header,
        transactions,
    })
}

/// Encodes an entire chain (genesis to tip) as length-prefixed blocks.
#[must_use]
pub fn encode_chain(chain: &crate::chain::Chain) -> Bytes {
    let mut out = BytesMut::new();
    out.put_u64_le(chain.len() as u64);
    for block in chain.iter() {
        let bytes = encode_block(block);
        out.put_u64_le(bytes.len() as u64);
        out.put_slice(&bytes);
    }
    out.freeze()
}

/// Decodes and **revalidates** a chain snapshot: every block is re-checked
/// for parent links, heights, timestamps, Merkle roots and transaction
/// authorizations via [`crate::chain::Chain::try_append`]. The
/// engine-specific proof rule is supplied by `proof_check` (pass
/// `|_| true` to skip lottery verification, e.g. for archived chains whose
/// miner set is unknown).
///
/// # Errors
/// Returns a [`DecodeError`] for malformed bytes; panics are avoided by
/// bounding all lengths.
pub fn decode_chain<F>(
    mut buf: impl Buf,
    mut proof_check: F,
) -> Result<Result<crate::chain::Chain, crate::chain::ChainError>, DecodeError>
where
    F: FnMut(&Block) -> bool,
{
    let count = get_u64(&mut buf)?;
    if count == 0 || count > MAX_TXS {
        return Err(DecodeError::LengthOutOfRange(count));
    }
    let mut blocks = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let len = get_u64(&mut buf)?;
        if len > (1 << 30) {
            return Err(DecodeError::LengthOutOfRange(len));
        }
        need(&buf, len as usize)?;
        let mut block_buf = vec![0u8; len as usize];
        buf.copy_to_slice(&mut block_buf);
        blocks.push(decode_block(&block_buf[..])?);
    }
    let mut iter = blocks.into_iter();
    let genesis = iter.next().expect("count >= 1");
    let mut chain = crate::chain::Chain::new(genesis);
    for block in iter {
        if let Err(e) = chain.try_append(block, &mut proof_check) {
            return Ok(Err(e));
        }
    }
    Ok(Ok(chain))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_block() -> Block {
        let proposer = Address::for_miner(0);
        Block::assemble(
            7,
            Hash256([3u8; 32]),
            999,
            U256::from_hex("00000000ffff0000000000000000000000000000000000000000000000000000")
                .expect("hex"),
            0xdead_beef,
            proposer,
            vec![
                Transaction::coinbase(proposer, 50, 7),
                Transaction::transfer(Address::for_miner(1), Address::for_miner(2), 10, 1, 0),
                Transaction::transfer(Address::for_miner(2), Address::for_miner(3), 99, 2, 5),
            ],
        )
    }

    #[test]
    fn block_roundtrip() {
        let block = sample_block();
        let bytes = encode_block(&block);
        let decoded = decode_block(bytes).expect("decode");
        assert_eq!(decoded, block);
        assert_eq!(decoded.hash(), block.hash());
        assert!(decoded.merkle_root_valid());
        assert!(decoded.transactions.iter().all(|t| t.verify_auth()));
    }

    #[test]
    fn empty_block_roundtrip() {
        let block = Block::assemble(
            0,
            Hash256::ZERO,
            0,
            U256::MAX,
            0,
            Address::for_miner(0),
            vec![],
        );
        let decoded = decode_block(encode_block(&block)).expect("decode");
        assert_eq!(decoded, block);
    }

    #[test]
    fn truncated_input_detected() {
        let bytes = encode_block(&sample_block());
        for cut in [0usize, 1, 10, 50, bytes.len() - 1] {
            let r = decode_block(&bytes[..cut]);
            assert_eq!(r, Err(DecodeError::UnexpectedEnd), "cut at {cut}");
        }
    }

    #[test]
    fn bad_tx_tag_detected() {
        let block = sample_block();
        let mut bytes = BytesMut::from(&encode_block(&block)[..]);
        // Header is 8+32+32+8+32+8+20 = 140 bytes, then the count, then the
        // first transaction's tag byte.
        let tag_offset = 140 + 8;
        bytes[tag_offset] = 99;
        let r = decode_block(bytes.freeze());
        assert_eq!(r, Err(DecodeError::BadTag(99)));
    }

    #[test]
    fn insane_length_rejected() {
        let block = Block::assemble(
            0,
            Hash256::ZERO,
            0,
            U256::MAX,
            0,
            Address::for_miner(0),
            vec![],
        );
        let mut bytes = BytesMut::from(&encode_block(&block)[..]);
        // Overwrite the tx count with a huge value.
        let count_offset = 140;
        bytes[count_offset..count_offset + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        let r = decode_block(bytes.freeze());
        assert!(matches!(r, Err(DecodeError::LengthOutOfRange(_))));
    }

    #[test]
    fn chain_snapshot_roundtrip_with_revalidation() {
        use crate::consensus::{BlockLottery, MinerProfile, SlPosEngine};
        use fairness_stats::rng::Xoshiro256StarStar;

        // Build a small real chain with the SL-PoS engine.
        let miners: Vec<MinerProfile> = (0..2).map(|i| MinerProfile::new(i, 0)).collect();
        let stakes = vec![300_000u64, 700_000];
        let engine = SlPosEngine::new(1000);
        let genesis = Block::assemble(0, Hash256::ZERO, 0, U256::MAX, 0, miners[0].address, vec![]);
        let mut chain = crate::chain::Chain::new(genesis);
        let mut rng = Xoshiro256StarStar::new(1);
        for height in 1..=20u64 {
            let prev = chain.tip().hash();
            let t = chain.tip().header.timestamp;
            let outcome = engine.run(&prev, height, &miners, &stakes, &mut rng);
            let block = Block::assemble(
                height,
                prev,
                t + 1,
                U256::MAX,
                0,
                miners[outcome.winner].address,
                vec![Transaction::coinbase(
                    miners[outcome.winner].address,
                    10,
                    height,
                )],
            );
            chain.try_append(block, |_| true).expect("append");
        }

        let snapshot = encode_chain(&chain);
        let restored = decode_chain(snapshot, |_| true)
            .expect("decode")
            .expect("revalidate");
        assert_eq!(restored.len(), chain.len());
        assert_eq!(restored.tip().hash(), chain.tip().hash());
        assert_eq!(
            restored.wins(&miners[0].address),
            chain.wins(&miners[0].address)
        );
    }

    #[test]
    fn chain_snapshot_detects_tampering() {
        let genesis = Block::assemble(
            0,
            Hash256::ZERO,
            0,
            U256::MAX,
            0,
            Address::for_miner(0),
            vec![],
        );
        let mut chain = crate::chain::Chain::new(genesis);
        for h in 1..=3u64 {
            let prev = chain.tip().hash();
            let t = chain.tip().header.timestamp + 1;
            let b = Block::assemble(h, prev, t, U256::MAX, 0, Address::for_miner(1), vec![]);
            chain.try_append(b, |_| true).expect("append");
        }
        let mut bytes = BytesMut::from(&encode_chain(&chain)[..]);
        // Flip a byte inside the genesis header (offset 16 = chain count
        // prefix + first length prefix): the genesis hash changes, so block
        // 1's parent link must fail revalidation.
        bytes[16] ^= 0xff;
        let result = decode_chain(bytes.freeze(), |_| true).expect("structurally decodable");
        assert!(result.is_err(), "tampered snapshot must fail revalidation");
    }

    #[test]
    fn tamper_changes_hash() {
        let block = sample_block();
        let mut bytes = BytesMut::from(&encode_block(&block)[..]);
        bytes[0] ^= 1; // flip a height bit
        let decoded = decode_block(bytes.freeze()).expect("structurally valid");
        assert_ne!(decoded.hash(), block.hash());
    }
}
