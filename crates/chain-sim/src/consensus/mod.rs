//! Hash-level consensus engines.
//!
//! Each engine implements the *mechanism* of its protocol exactly as the
//! paper describes it in Section 2 — not the closed-form win probabilities
//! (those live in `fairness-core::theory` and are *validated against* these
//! engines in tests):
//!
//! * [`pow`] — nonce grinding: `Hash(nonce, …) < D` (Section 2.1);
//! * [`mlpos`] — one kernel trial per miner per timestamp:
//!   `Hash(time, …) < D·stake` (Section 2.2);
//! * [`slpos`] — NXT single lottery: `time = basetime·Hash(pk, …)/stake`,
//!   smallest waiting time wins (Section 2.3);
//! * [`fslpos`] — the paper's fairness treatment:
//!   `time = basetime·(−ln(1 − Hash/2²⁵⁶))/stake` (Section 6.2);
//! * [`cpos`] — epochs with `P` shard proposers plus proportional attester
//!   rewards (Section 2.4).

pub mod cpos;
pub mod fslpos;
pub mod mlpos;
pub mod pow;
pub mod slpos;

pub use cpos::{CPosEngine, EpochOutcome};
pub use fslpos::FslPosEngine;
pub use mlpos::MlPosEngine;
pub use pow::PowEngine;
pub use slpos::SlPosEngine;

use crate::account::Address;
use crate::hash::{Hash256, HashBuilder};
use rand::RngCore;

/// A participating miner's identity and fixed attributes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MinerProfile {
    /// Dense miner index (0-based).
    pub index: usize,
    /// Public key (hash commitment).
    pub pubkey: Hash256,
    /// Reward address.
    pub address: Address,
    /// PoW hash trials per tick (ignored by PoS engines).
    pub hash_rate: u64,
}

impl MinerProfile {
    /// Builds the canonical profile for miner `index` with the given PoW
    /// hash rate.
    #[must_use]
    pub fn new(index: usize, hash_rate: u64) -> Self {
        let pubkey = HashBuilder::new("miner-pubkey").u64(index as u64).finish();
        Self {
            index,
            pubkey,
            address: Address::from_pubkey(&pubkey),
            hash_rate,
        }
    }
}

/// Outcome of a single-block lottery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LotteryOutcome {
    /// Index of the winning miner.
    pub winner: usize,
    /// Simulated time consumed by the lottery, in ticks.
    pub elapsed_ticks: u64,
    /// Winning nonce (PoW) or 0.
    pub nonce: u64,
    /// The winning lottery hash (kernel/hit), for auditability.
    pub proof_hash: Hash256,
}

/// A consensus engine that elects one proposer per block.
///
/// Engines draw all randomness from the previous block hash (like real
/// chains) plus, where the physical protocol is randomized (PoW nonce
/// starting points, ML-PoS tie-breaking), from the supplied RNG.
pub trait BlockLottery {
    /// Engine name for reports.
    fn name(&self) -> &'static str;

    /// Runs the lottery for the block after `prev`, given per-miner stakes
    /// in atoms (PoS) or using profile hash rates (PoW).
    ///
    /// # Panics
    /// Implementations panic if `miners` is empty, `stakes` length differs,
    /// or total stake is zero for a stake-based engine.
    fn run(
        &self,
        prev: &Hash256,
        height: u64,
        miners: &[MinerProfile],
        stakes: &[u64],
        rng: &mut dyn RngCore,
    ) -> LotteryOutcome;

    /// Verifies that `outcome` is a valid win for `winner` under this
    /// engine's rule (used as the chain's proof check).
    fn verify(
        &self,
        prev: &Hash256,
        height: u64,
        miners: &[MinerProfile],
        stakes: &[u64],
        outcome: &LotteryOutcome,
    ) -> bool;
}

/// An RNG that panics on use. Deterministic lotteries (SL-PoS, FSL-PoS)
/// re-run themselves during verification with this to assert they draw no
/// randomness beyond the chain state.
pub(crate) struct NoRng;

impl RngCore for NoRng {
    fn next_u32(&mut self) -> u32 {
        unreachable!("deterministic lottery must not consume RNG output")
    }
    fn next_u64(&mut self) -> u64 {
        unreachable!("deterministic lottery must not consume RNG output")
    }
    fn fill_bytes(&mut self, _dest: &mut [u8]) {
        unreachable!("deterministic lottery must not consume RNG output")
    }
    fn try_fill_bytes(&mut self, _dest: &mut [u8]) -> Result<(), rand::Error> {
        unreachable!("deterministic lottery must not consume RNG output")
    }
}

pub(crate) fn check_inputs(miners: &[MinerProfile], stakes: &[u64]) {
    assert!(!miners.is_empty(), "lottery requires at least one miner");
    assert_eq!(
        miners.len(),
        stakes.len(),
        "stakes length must match miner count"
    );
}

pub(crate) fn total_stake(stakes: &[u64]) -> u128 {
    stakes.iter().map(|&s| s as u128).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_deterministic() {
        let a = MinerProfile::new(3, 10);
        let b = MinerProfile::new(3, 10);
        assert_eq!(a, b);
        assert_ne!(a.pubkey, MinerProfile::new(4, 10).pubkey);
        assert_eq!(a.address, Address::from_pubkey(&a.pubkey));
    }

    #[test]
    #[should_panic(expected = "at least one miner")]
    fn empty_miner_set_rejected() {
        check_inputs(&[], &[]);
    }

    #[test]
    #[should_panic(expected = "length must match")]
    fn stake_length_mismatch_rejected() {
        check_inputs(&[MinerProfile::new(0, 1)], &[1, 2]);
    }
}
