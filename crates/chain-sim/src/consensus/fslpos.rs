//! Fair single-lottery PoS — the paper's treatment for SL-PoS (Section 6.2).
//!
//! SL-PoS is unfair because a *uniform* ticket scaled by `1/stake` does not
//! race proportionally. The treatment transforms the uniform hash into an
//! exponential via inverse-transform sampling:
//!
//! ```text
//! time_i = basetime · (−ln(1 − Hash_i/2²⁵⁶)) / stake_i
//! ```
//!
//! which makes `time_i ~ Exp(stake_i)` so that
//! `Pr[A wins] = S_A/(S_A + S_B)` exactly — restoring expectational
//! fairness (though not robust fairness; see Figure 6a).

use super::{check_inputs, total_stake, BlockLottery, LotteryOutcome, MinerProfile};
use crate::hash::{Hash256, HashBuilder};
use rand::RngCore;

/// FSL-PoS engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FslPosEngine {
    /// Scale factor from the exponential variate to ticks.
    basetime: f64,
}

impl FslPosEngine {
    /// Creates an engine with the given basetime scale.
    ///
    /// # Panics
    /// Panics unless `basetime` is positive and finite.
    #[must_use]
    pub fn new(basetime: f64) -> Self {
        assert!(
            basetime.is_finite() && basetime > 0.0,
            "basetime must be positive, got {basetime}"
        );
        Self { basetime }
    }

    /// The miner's uniform draw for this block, in `[0, 1)`.
    #[must_use]
    pub fn uniform_draw(prev: &Hash256, pubkey: &Hash256) -> f64 {
        HashBuilder::new("fslpos-draw")
            .hash(prev)
            .hash(pubkey)
            .finish()
            .as_unit_f64()
    }

    /// Waiting time `basetime·(−ln(1−u))/stake`.
    #[must_use]
    pub fn waiting_time(&self, u: f64, stake: u64) -> f64 {
        if stake == 0 {
            return f64::INFINITY;
        }
        // ln1p for numerical accuracy near u = 0.
        self.basetime * (-(-u).ln_1p()) / stake as f64
    }
}

impl BlockLottery for FslPosEngine {
    fn name(&self) -> &'static str {
        "fsl-pos"
    }

    fn run(
        &self,
        prev: &Hash256,
        _height: u64,
        miners: &[MinerProfile],
        stakes: &[u64],
        _rng: &mut dyn RngCore,
    ) -> LotteryOutcome {
        check_inputs(miners, stakes);
        assert!(
            total_stake(stakes) > 0,
            "FSL-PoS requires positive total stake"
        );
        let mut best: Option<(f64, usize)> = None;
        for (mi, miner) in miners.iter().enumerate() {
            if stakes[mi] == 0 {
                continue;
            }
            let u = Self::uniform_draw(prev, &miner.pubkey);
            let t = self.waiting_time(u, stakes[mi]);
            let better = match best {
                None => true,
                // Ties have probability ~0; break by index deterministically.
                Some((bt, _)) => t < bt,
            };
            if better {
                best = Some((t, mi));
            }
        }
        let (t, winner) = best.expect("some miner has stake");
        LotteryOutcome {
            winner,
            elapsed_ticks: t.min(u64::MAX as f64).ceil().max(1.0) as u64,
            nonce: 0,
            proof_hash: HashBuilder::new("fslpos-proof")
                .hash(prev)
                .hash(&miners[winner].pubkey)
                .finish(),
        }
    }

    fn verify(
        &self,
        prev: &Hash256,
        height: u64,
        miners: &[MinerProfile],
        stakes: &[u64],
        outcome: &LotteryOutcome,
    ) -> bool {
        if outcome.winner >= miners.len() {
            return false;
        }
        let mut throwaway = super::NoRng;
        let expect = self.run(prev, height, miners, stakes, &mut throwaway);
        expect.winner == outcome.winner && expect.proof_hash == outcome.proof_hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairness_stats::rng::Xoshiro256StarStar;

    fn miners(n: usize) -> Vec<MinerProfile> {
        (0..n).map(|i| MinerProfile::new(i, 0)).collect()
    }

    fn chain_hash(prev: &Hash256, h: u64) -> Hash256 {
        HashBuilder::new("chain").hash(prev).u64(h).finish()
    }

    #[test]
    fn win_rate_proportional_to_stake() {
        // The whole point of the treatment: 20/80 stakes → 20% win rate
        // (vs 12.5% under plain SL-PoS).
        let ms = miners(2);
        let stakes = vec![2000, 8000];
        let engine = FslPosEngine::new(1_000_000.0);
        let mut rng = Xoshiro256StarStar::new(1);
        let n = 20_000;
        let mut wins_a = 0u64;
        let mut prev = Hash256::ZERO;
        for h in 0..n {
            let out = engine.run(&prev, h, &ms, &stakes, &mut rng);
            if out.winner == 0 {
                wins_a += 1;
            }
            prev = chain_hash(&prev, h);
        }
        let frac = wins_a as f64 / n as f64;
        assert!((frac - 0.2).abs() < 0.013, "win fraction {frac} vs 0.2");
    }

    #[test]
    fn three_miner_proportionality() {
        let ms = miners(3);
        let stakes = vec![1000, 3000, 6000];
        let engine = FslPosEngine::new(1000.0);
        let mut rng = Xoshiro256StarStar::new(2);
        let n = 30_000;
        let mut wins = [0u64; 3];
        let mut prev = Hash256::ZERO;
        for h in 0..n {
            let out = engine.run(&prev, h, &ms, &stakes, &mut rng);
            wins[out.winner] += 1;
            prev = chain_hash(&prev, h);
        }
        for (i, expect) in [0.1, 0.3, 0.6].iter().enumerate() {
            let frac = wins[i] as f64 / n as f64;
            assert!(
                (frac - expect).abs() < 0.013,
                "miner {i}: {frac} vs {expect}"
            );
        }
    }

    #[test]
    fn deterministic_and_verifiable() {
        let ms = miners(2);
        let stakes = vec![100, 900];
        let engine = FslPosEngine::new(100.0);
        let mut rng = Xoshiro256StarStar::new(3);
        let prev = Hash256::ZERO;
        let a = engine.run(&prev, 1, &ms, &stakes, &mut rng);
        let b = engine.run(&prev, 1, &ms, &stakes, &mut rng);
        assert_eq!(a, b);
        assert!(engine.verify(&prev, 1, &ms, &stakes, &a));
        let mut bad = a;
        bad.winner = 1 - bad.winner;
        assert!(!engine.verify(&prev, 1, &ms, &stakes, &bad));
    }

    #[test]
    fn waiting_time_properties() {
        let engine = FslPosEngine::new(10.0);
        assert_eq!(engine.waiting_time(0.5, 0), f64::INFINITY);
        // Larger stake → shorter wait for the same draw.
        assert!(engine.waiting_time(0.5, 100) < engine.waiting_time(0.5, 10));
        // u → 0 gives time → 0; u → 1 diverges.
        assert!(engine.waiting_time(1e-12, 10) < 1e-10);
        assert!(engine.waiting_time(1.0 - 1e-12, 10) > 1.0);
    }

    #[test]
    #[should_panic(expected = "basetime must be positive")]
    fn bad_basetime_rejected() {
        let _ = FslPosEngine::new(0.0);
    }
}
