//! Single-lottery PoS (NXT style, Section 2.3).
//!
//! Each miner gets exactly one ticket per block: a 64-bit "hit" drawn from
//! `Hash("slpos-hit", prev, pk)` (NXT takes the first 8 bytes of the
//! generation-signature hash). The candidate becomes valid at waiting time
//!
//! ```text
//! time_i = basetime · hit_i / stake_i
//! ```
//!
//! and the smallest waiting time wins. Because the *minimum* of one uniform
//! sample per miner scaled by `1/stake` is **not** proportional to stake,
//! the win probability is `S_A/(2·S_B)` for the poorer miner (Eq. 1) — the
//! source of SL-PoS's rich-get-richer dynamics (Theorems 3.4, 4.9).

use super::{check_inputs, total_stake, BlockLottery, LotteryOutcome, MinerProfile};
use crate::hash::{Hash256, HashBuilder};
use rand::RngCore;

/// SL-PoS engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlPosEngine {
    /// Scale factor from hit/stake ratio to ticks.
    basetime: u64,
}

impl SlPosEngine {
    /// Creates an engine with the given basetime scale.
    ///
    /// # Panics
    /// Panics if `basetime` is zero.
    #[must_use]
    pub fn new(basetime: u64) -> Self {
        assert!(basetime > 0, "basetime must be positive");
        Self { basetime }
    }

    /// The basetime scale.
    #[must_use]
    pub fn basetime(&self) -> u64 {
        self.basetime
    }

    /// The miner's 64-bit hit value for this block.
    #[must_use]
    pub fn hit(prev: &Hash256, pubkey: &Hash256) -> u64 {
        let digest = HashBuilder::new("slpos-hit")
            .hash(prev)
            .hash(pubkey)
            .finish();
        u64::from_be_bytes(digest.0[..8].try_into().expect("8 bytes"))
    }

    /// Waiting time of a candidate: `basetime·hit/stake` (u128 arithmetic;
    /// zero stake waits forever).
    #[must_use]
    pub fn waiting_time(&self, hit: u64, stake: u64) -> u128 {
        if stake == 0 {
            return u128::MAX;
        }
        self.basetime as u128 * hit as u128 / stake as u128
    }

    /// The waiting time a miner would have on top of `prev` — hit lookup
    /// plus scaling in one call. Stake grinders use this to score candidate
    /// parent blocks (every hit is public, so anyone can evaluate the next
    /// lottery for any candidate tip).
    #[must_use]
    pub fn next_waiting_time(&self, prev: &Hash256, pubkey: &Hash256, stake: u64) -> u128 {
        self.waiting_time(Self::hit(prev, pubkey), stake)
    }

    /// Runs the single lottery with **per-miner parent tips** — the
    /// fork-aware variant of [`BlockLottery::run`]: miner `i` draws her hit
    /// from `tips[i]`, so branches race on equal terms during withholding.
    /// Fully deterministic given the tips (no RNG), like the ordinary run.
    ///
    /// # Panics
    /// Panics if `tips` or `stakes` length differs from `miners`, or total
    /// stake is zero.
    #[must_use]
    pub fn run_on_tips(
        &self,
        tips: &[Hash256],
        miners: &[MinerProfile],
        stakes: &[u64],
    ) -> LotteryOutcome {
        check_inputs(miners, stakes);
        assert_eq!(
            tips.len(),
            miners.len(),
            "tips length must match miner count"
        );
        assert!(
            total_stake(stakes) > 0,
            "SL-PoS requires positive total stake"
        );
        let mut best: Option<(u128, u64, usize)> = None;
        for (mi, miner) in miners.iter().enumerate() {
            if stakes[mi] == 0 {
                continue;
            }
            let hit = Self::hit(&tips[mi], &miner.pubkey);
            let t = self.waiting_time(hit, stakes[mi]);
            // Tie on waiting time broken by the smaller raw hit, then by
            // miner index — fully deterministic like NXT's chain selection.
            let candidate = (t, hit, mi);
            let better = match &best {
                None => true,
                Some(b) => candidate < *b,
            };
            if better {
                best = Some(candidate);
            }
        }
        let (t, _hit, winner) = best.expect("some miner has stake");
        // Winner selection uses the full-precision u128 waiting time; the
        // *reported* elapsed time is scaled down to tick-sized units (raw
        // values are hit/stake ratios with hit ~ U(0, 2⁶⁴)).
        LotteryOutcome {
            winner,
            elapsed_ticks: ((t >> 40) + 1).min(u64::MAX as u128) as u64,
            nonce: 0,
            proof_hash: HashBuilder::new("slpos-proof")
                .hash(&tips[winner])
                .hash(&miners[winner].pubkey)
                .finish(),
        }
    }
}

impl BlockLottery for SlPosEngine {
    fn name(&self) -> &'static str {
        "sl-pos"
    }

    fn run(
        &self,
        prev: &Hash256,
        _height: u64,
        miners: &[MinerProfile],
        stakes: &[u64],
        _rng: &mut dyn RngCore,
    ) -> LotteryOutcome {
        let tips = vec![*prev; miners.len()];
        self.run_on_tips(&tips, miners, stakes)
    }

    fn verify(
        &self,
        prev: &Hash256,
        height: u64,
        miners: &[MinerProfile],
        stakes: &[u64],
        outcome: &LotteryOutcome,
    ) -> bool {
        if outcome.winner >= miners.len() {
            return false;
        }
        // Re-run the deterministic lottery and compare.
        let mut throwaway = super::NoRng;
        let expect = self.run(prev, height, miners, stakes, &mut throwaway);
        expect.winner == outcome.winner && expect.proof_hash == outcome.proof_hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairness_stats::rng::Xoshiro256StarStar;

    fn miners(n: usize) -> Vec<MinerProfile> {
        (0..n).map(|i| MinerProfile::new(i, 0)).collect()
    }

    fn chain_hash(prev: &Hash256, h: u64) -> Hash256 {
        HashBuilder::new("chain").hash(prev).u64(h).finish()
    }

    #[test]
    fn deterministic_given_prev_hash() {
        let ms = miners(3);
        let stakes = vec![100, 200, 700];
        let engine = SlPosEngine::new(1000);
        let mut rng = Xoshiro256StarStar::new(1);
        let prev = Hash256::ZERO;
        let a = engine.run(&prev, 1, &ms, &stakes, &mut rng);
        let b = engine.run(&prev, 1, &ms, &stakes, &mut rng);
        assert_eq!(a, b);
        assert!(engine.verify(&prev, 1, &ms, &stakes, &a));
    }

    #[test]
    fn poor_miner_wins_half_of_fair_share() {
        // Section 2.3 / Eq. (1): with stakes 20/80, A's win probability is
        // a/(2b) = 0.2/1.6 = 0.125, not 0.2.
        let ms = miners(2);
        let stakes = vec![2000, 8000];
        let engine = SlPosEngine::new(1_000_000);
        let mut rng = Xoshiro256StarStar::new(2);
        let n = 20_000;
        let mut wins_a = 0u64;
        let mut prev = Hash256::ZERO;
        for h in 0..n {
            let out = engine.run(&prev, h, &ms, &stakes, &mut rng);
            if out.winner == 0 {
                wins_a += 1;
            }
            prev = chain_hash(&prev, h);
        }
        let frac = wins_a as f64 / n as f64;
        // SE ≈ sqrt(0.125·0.875/20000) ≈ 0.0023; allow ~4.5σ.
        assert!((frac - 0.125).abs() < 0.011, "win fraction {frac} vs 0.125");
    }

    #[test]
    fn equal_stakes_win_equally() {
        let ms = miners(2);
        let stakes = vec![500, 500];
        let engine = SlPosEngine::new(1000);
        let mut rng = Xoshiro256StarStar::new(3);
        let n = 20_000;
        let mut wins_a = 0u64;
        let mut prev = Hash256::ZERO;
        for h in 0..n {
            let out = engine.run(&prev, h, &ms, &stakes, &mut rng);
            if out.winner == 0 {
                wins_a += 1;
            }
            prev = chain_hash(&prev, h);
        }
        let frac = wins_a as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.016, "win fraction {frac}");
    }

    #[test]
    fn zero_stake_waits_forever() {
        let engine = SlPosEngine::new(10);
        assert_eq!(engine.waiting_time(12345, 0), u128::MAX);
        let ms = miners(2);
        let stakes = vec![0, 10];
        let mut rng = Xoshiro256StarStar::new(4);
        let out = engine.run(&Hash256::ZERO, 1, &ms, &stakes, &mut rng);
        assert_eq!(out.winner, 1);
    }

    #[test]
    fn waiting_time_scales_inversely_with_stake() {
        let engine = SlPosEngine::new(100);
        let hit = 1_000_000u64;
        assert!(engine.waiting_time(hit, 10) > engine.waiting_time(hit, 100));
        assert_eq!(engine.waiting_time(hit, 100), 100 * 1_000_000 / 100);
    }

    #[test]
    fn verify_rejects_wrong_winner() {
        let ms = miners(2);
        let stakes = vec![100, 900];
        let engine = SlPosEngine::new(1000);
        let mut rng = Xoshiro256StarStar::new(5);
        let prev = Hash256::ZERO;
        let mut out = engine.run(&prev, 1, &ms, &stakes, &mut rng);
        out.winner = 1 - out.winner;
        assert!(!engine.verify(&prev, 1, &ms, &stakes, &out));
    }

    #[test]
    #[should_panic(expected = "basetime must be positive")]
    fn zero_basetime_rejected() {
        let _ = SlPosEngine::new(0);
    }
}
