//! Compound PoS (Ethereum 2.0 style, Section 2.4).
//!
//! Mining proceeds in epochs. Each epoch:
//!
//! * one proposer is selected per shard, uniformly over *stake* (every
//!   32-Ether identity is one ticket, i.e. selection weight = stake), for
//!   `P` shards; each proposer earns `w/P` of the proposer budget;
//! * every miner earns an attester ("inflation") reward proportional to her
//!   stake: `v · s_i / Σs`.
//!
//! The attester split uses exact largest-remainder apportionment so the
//! epoch issues exactly `v + w` atoms — the ledger's supply invariant
//! (`1 + (w+v)·n` total after `n` epochs, in the paper's normalization)
//! holds to the atom.

use super::{check_inputs, total_stake, MinerProfile};
use crate::account::proportional_split;
use crate::hash::{Hash256, HashBuilder};
use rand::RngCore;

/// C-PoS epoch engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CPosEngine {
    /// Number of shards (proposer slots) per epoch. Ethereum 2.0 uses 32.
    shards: u32,
    /// Total proposer reward per epoch, in atoms.
    proposer_reward: u64,
    /// Total attester (inflation) reward per epoch, in atoms.
    attester_reward: u64,
}

/// Result of one C-PoS epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochOutcome {
    /// Winning miner index per shard (`len == shards`).
    pub shard_proposers: Vec<usize>,
    /// Exact atoms earned by each miner this epoch (proposer + attester).
    pub rewards: Vec<u64>,
    /// Atoms of the proposer budget earned per miner.
    pub proposer_portion: Vec<u64>,
    /// Atoms of the attester budget earned per miner.
    pub attester_portion: Vec<u64>,
}

impl CPosEngine {
    /// Creates an engine.
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    #[must_use]
    pub fn new(shards: u32, proposer_reward: u64, attester_reward: u64) -> Self {
        assert!(shards > 0, "C-PoS requires at least one shard");
        Self {
            shards,
            proposer_reward,
            attester_reward,
        }
    }

    /// Number of shards per epoch.
    #[must_use]
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// Proposer budget per epoch (atoms).
    #[must_use]
    pub fn proposer_reward(&self) -> u64 {
        self.proposer_reward
    }

    /// Attester budget per epoch (atoms).
    #[must_use]
    pub fn attester_reward(&self) -> u64 {
        self.attester_reward
    }

    /// Selects the proposer for `(epoch, shard)` by stake-weighted choice
    /// driven by the epoch randomness beacon (hash of the previous epoch's
    /// tip).
    #[must_use]
    pub fn select_proposer(prev: &Hash256, epoch: u64, shard: u32, stakes: &[u64]) -> usize {
        let total = total_stake(stakes);
        assert!(total > 0, "C-PoS requires positive total stake");
        let beacon = HashBuilder::new("cpos-proposer")
            .hash(prev)
            .u64(epoch)
            .u64(shard as u64)
            .finish();
        // Map the 256-bit beacon to [0, total) exactly via wide modulo; the
        // modulo bias is < 2^-190 for realistic stake totals.
        let draw = beacon
            .to_u256()
            .div_rem(crate::u256::U256::from_u128(total))
            .1;
        let mut point = draw.low_u128();
        for (i, &s) in stakes.iter().enumerate() {
            if point < s as u128 {
                return i;
            }
            point -= s as u128;
        }
        unreachable!("draw < total stake")
    }

    /// Runs one epoch: selects `P` shard proposers and computes exact
    /// reward portions.
    ///
    /// The RNG parameter is unused (the lottery is beacon-driven) but kept
    /// for interface symmetry with [`super::BlockLottery`].
    #[must_use]
    pub fn run_epoch(
        &self,
        prev: &Hash256,
        epoch: u64,
        miners: &[MinerProfile],
        stakes: &[u64],
        _rng: &mut dyn RngCore,
    ) -> EpochOutcome {
        check_inputs(miners, stakes);
        let m = miners.len();
        let mut shard_proposers = Vec::with_capacity(self.shards as usize);
        let mut blocks_won = vec![0u64; m];
        for shard in 0..self.shards {
            let winner = Self::select_proposer(prev, epoch, shard, stakes);
            shard_proposers.push(winner);
            blocks_won[winner] += 1;
        }
        // Proposer budget split exactly proportionally to shards won
        // (blocks_won sums to `shards > 0`, so the split is well-defined).
        let proposer_portion = proportional_split(self.proposer_reward, &blocks_won);
        let attester_portion = proportional_split(self.attester_reward, stakes);
        let rewards: Vec<u64> = proposer_portion
            .iter()
            .zip(&attester_portion)
            .map(|(&p, &a)| p + a)
            .collect();
        EpochOutcome {
            shard_proposers,
            rewards,
            proposer_portion,
            attester_portion,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairness_stats::rng::Xoshiro256StarStar;

    fn miners(n: usize) -> Vec<MinerProfile> {
        (0..n).map(|i| MinerProfile::new(i, 0)).collect()
    }

    fn chain_hash(prev: &Hash256, h: u64) -> Hash256 {
        HashBuilder::new("chain").hash(prev).u64(h).finish()
    }

    #[test]
    fn epoch_issues_exact_total() {
        let engine = CPosEngine::new(32, 1_000, 10_000);
        let ms = miners(3);
        let stakes = vec![200_000, 300_000, 500_000];
        let mut rng = Xoshiro256StarStar::new(1);
        let out = engine.run_epoch(&Hash256::ZERO, 0, &ms, &stakes, &mut rng);
        assert_eq!(out.shard_proposers.len(), 32);
        assert_eq!(out.rewards.iter().sum::<u64>(), 11_000);
        assert_eq!(out.proposer_portion.iter().sum::<u64>(), 1_000);
        assert_eq!(out.attester_portion.iter().sum::<u64>(), 10_000);
    }

    #[test]
    fn attester_reward_proportional() {
        let engine = CPosEngine::new(4, 0, 1_000);
        let ms = miners(2);
        let stakes = vec![200, 800];
        let mut rng = Xoshiro256StarStar::new(2);
        let out = engine.run_epoch(&Hash256::ZERO, 0, &ms, &stakes, &mut rng);
        assert_eq!(out.attester_portion, vec![200, 800]);
    }

    #[test]
    fn proposer_selection_is_stake_weighted() {
        let ms = miners(2);
        let stakes = vec![200, 800];
        let engine = CPosEngine::new(32, 32, 0);
        let mut rng = Xoshiro256StarStar::new(3);
        let mut prev = Hash256::ZERO;
        let mut a_blocks = 0u64;
        let epochs = 1000u64;
        for e in 0..epochs {
            let out = engine.run_epoch(&prev, e, &ms, &stakes, &mut rng);
            a_blocks += out.shard_proposers.iter().filter(|&&w| w == 0).count() as u64;
            prev = chain_hash(&prev, e);
        }
        let frac = a_blocks as f64 / (epochs * 32) as f64;
        // Bin(32000, 0.2): SE ≈ 0.0022; allow ~5σ.
        assert!((frac - 0.2).abs() < 0.012, "proposer fraction {frac}");
    }

    #[test]
    fn beacon_selection_deterministic() {
        let stakes = vec![100, 900];
        let a = CPosEngine::select_proposer(&Hash256::ZERO, 3, 7, &stakes);
        let b = CPosEngine::select_proposer(&Hash256::ZERO, 3, 7, &stakes);
        assert_eq!(a, b);
    }

    #[test]
    fn zero_stake_miner_never_proposes_or_attests() {
        let engine = CPosEngine::new(16, 160, 1600);
        let ms = miners(3);
        let stakes = vec![0, 500, 500];
        let mut rng = Xoshiro256StarStar::new(4);
        let mut prev = Hash256::ZERO;
        for e in 0..50 {
            let out = engine.run_epoch(&prev, e, &ms, &stakes, &mut rng);
            assert!(out.shard_proposers.iter().all(|&w| w != 0));
            assert_eq!(out.attester_portion[0], 0);
            prev = chain_hash(&prev, e);
        }
    }

    #[test]
    fn degenerate_single_shard() {
        let engine = CPosEngine::new(1, 100, 0);
        let ms = miners(2);
        let stakes = vec![1, 1];
        let mut rng = Xoshiro256StarStar::new(5);
        let out = engine.run_epoch(&Hash256::ZERO, 0, &ms, &stakes, &mut rng);
        assert_eq!(out.shard_proposers.len(), 1);
        let winner = out.shard_proposers[0];
        assert_eq!(out.proposer_portion[winner], 100);
        assert_eq!(out.proposer_portion[1 - winner], 0);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = CPosEngine::new(0, 1, 1);
    }

    #[test]
    #[should_panic(expected = "positive total stake")]
    fn zero_total_stake_rejected() {
        let _ = CPosEngine::select_proposer(&Hash256::ZERO, 0, 0, &[0, 0]);
    }
}
