//! Multi-lottery PoS (Qtum/Blackcoin style, Section 2.2).
//!
//! One kernel trial per miner per timestamp: the candidate at timestamp `t`
//! is valid when `Hash("mlpos-kernel", prev, pk, t) < D·stake`. Miners scan
//! timestamps until someone succeeds; simultaneous successes are broken by
//! a fair coin (the paper's 50% tie rule, generalized to uniform choice
//! among the tick's winners). Per-trial success probability is
//! `p_i = D·stake_i/2²⁵⁶`, so the block race is the geometric race of
//! Section 2.2 and the win probability ≈ `S_A/(S_A+S_B)` for small `p`.

use super::{check_inputs, total_stake, BlockLottery, LotteryOutcome, MinerProfile};
use crate::hash::{Hash256, HashBuilder, HashMidstate};
use crate::u256::U256;
use rand::Rng as _;
use rand::RngCore;

/// ML-PoS engine parameterized by the per-stake-atom difficulty `D`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MlPosEngine {
    /// Difficulty factor: a kernel is valid iff `kernel < difficulty·stake`.
    difficulty: U256,
    /// Design block interval in ticks; used by retargeting.
    target_interval: u64,
    max_ticks: u64,
}

impl MlPosEngine {
    /// Creates an engine with per-atom difficulty `difficulty`.
    ///
    /// # Panics
    /// Panics if the difficulty is zero.
    #[must_use]
    pub fn new(difficulty: U256) -> Self {
        assert!(!difficulty.is_zero(), "ML-PoS difficulty must be positive");
        Self {
            difficulty,
            target_interval: 0,
            max_ticks: 10_000_000,
        }
    }

    /// Convenience: difficulty such that with `total_stake` atoms staked the
    /// expected block interval is `ticks_per_block` ticks
    /// (`Σp_i = 1/ticks_per_block`).
    ///
    /// # Panics
    /// Panics if either argument is zero.
    #[must_use]
    pub fn for_expected_interval(total_stake: u64, ticks_per_block: u64) -> Self {
        assert!(total_stake > 0, "total stake must be positive");
        assert!(ticks_per_block > 0, "interval must be positive");
        let denom = U256::from_u64(total_stake) * U256::from_u64(ticks_per_block);
        let mut engine = Self::new(U256::MAX.div_rem(denom).0.max(U256::ONE));
        engine.target_interval = ticks_per_block;
        engine
    }

    /// Retargets the difficulty for the current total stake, keeping the
    /// expected block interval at its design value. Real ML-PoS chains
    /// (Qtum, Blackcoin) retarget every block for the same reason: as
    /// rewards increase the staked supply, per-timestamp success
    /// probabilities would otherwise creep up, shrinking intervals and
    /// amplifying the tie-break distortion of the lottery.
    ///
    /// No-op when the engine was built with a raw difficulty.
    pub fn retarget(&mut self, total_stake: u64) {
        if self.target_interval == 0 || total_stake == 0 {
            return;
        }
        let denom = U256::from_u64(total_stake) * U256::from_u64(self.target_interval);
        self.difficulty = U256::MAX.div_rem(denom).0.max(U256::ONE);
    }

    /// The per-atom difficulty.
    #[must_use]
    pub fn difficulty(&self) -> U256 {
        self.difficulty
    }

    /// The kernel hash of one (miner, timestamp) trial.
    #[must_use]
    pub fn kernel(prev: &Hash256, pubkey: &Hash256, timestamp: u64) -> Hash256 {
        HashBuilder::new("mlpos-kernel")
            .hash(prev)
            .hash(pubkey)
            .u64(timestamp)
            .finish()
    }

    /// Midstate over the fixed kernel prefix `(prev, pubkey)`; scanning
    /// timestamps from it yields [`kernel`](Self::kernel) bit-for-bit at
    /// one compression per trial (the timestamp scan is this engine's
    /// nonce grind).
    #[must_use]
    pub fn kernel_midstate(prev: &Hash256, pubkey: &Hash256) -> HashMidstate {
        HashBuilder::new("mlpos-kernel")
            .hash(prev)
            .hash(pubkey)
            .midstate()
    }

    /// Whether a kernel satisfies `kernel < difficulty·stake`.
    #[must_use]
    pub fn kernel_valid(&self, kernel: &Hash256, stake: u64) -> bool {
        if stake == 0 {
            return false;
        }
        let threshold = self.difficulty.saturating_mul(U256::from_u64(stake));
        kernel.to_u256() < threshold
    }
}

impl BlockLottery for MlPosEngine {
    fn name(&self) -> &'static str {
        "ml-pos"
    }

    fn run(
        &self,
        prev: &Hash256,
        _height: u64,
        miners: &[MinerProfile],
        stakes: &[u64],
        rng: &mut dyn RngCore,
    ) -> LotteryOutcome {
        check_inputs(miners, stakes);
        assert!(
            total_stake(stakes) > 0,
            "ML-PoS requires positive total stake"
        );
        // The kernel prefix (prev, pubkey) is fixed for the whole race:
        // absorb it once per miner, then scan timestamps from the
        // midstates (same digests, one compression per trial). Per-miner
        // validity thresholds are fixed too — precompute them.
        let midstates: Vec<Option<(HashMidstate, U256)>> = miners
            .iter()
            .zip(stakes)
            .map(|(miner, &stake)| {
                (stake > 0).then(|| {
                    let threshold = self.difficulty.saturating_mul(U256::from_u64(stake));
                    (Self::kernel_midstate(prev, &miner.pubkey), threshold)
                })
            })
            .collect();
        let mut winners: Vec<(usize, Hash256)> = Vec::new();
        for tick in 1..=self.max_ticks {
            // Collect all miners whose kernel is valid at this timestamp.
            winners.clear();
            for (mi, entry) in midstates.iter().enumerate() {
                let Some((midstate, threshold)) = entry else {
                    continue;
                };
                let kernel = midstate.finish_u64(tick);
                if kernel.to_u256() < *threshold {
                    winners.push((mi, kernel));
                }
            }
            if !winners.is_empty() {
                // The paper's tie rule: a fair coin between simultaneous
                // successes (uniform among >2).
                let pick = if winners.len() == 1 {
                    0
                } else {
                    rng.gen_range(0..winners.len())
                };
                let (winner, kernel) = winners[pick];
                return LotteryOutcome {
                    winner,
                    elapsed_ticks: tick,
                    nonce: 0,
                    proof_hash: kernel,
                };
            }
        }
        panic!(
            "ML-PoS lottery found no block within {} ticks — difficulty too hard",
            self.max_ticks
        );
    }

    fn verify(
        &self,
        prev: &Hash256,
        _height: u64,
        miners: &[MinerProfile],
        stakes: &[u64],
        outcome: &LotteryOutcome,
    ) -> bool {
        let Some(miner) = miners.get(outcome.winner) else {
            return false;
        };
        let Some(&stake) = stakes.get(outcome.winner) else {
            return false;
        };
        let kernel = Self::kernel(prev, &miner.pubkey, outcome.elapsed_ticks);
        kernel == outcome.proof_hash && self.kernel_valid(&kernel, stake)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairness_stats::rng::Xoshiro256StarStar;

    fn miners(n: usize) -> Vec<MinerProfile> {
        (0..n).map(|i| MinerProfile::new(i, 0)).collect()
    }

    #[test]
    fn lottery_completes_and_verifies() {
        let ms = miners(2);
        let stakes = vec![200, 800];
        let engine = MlPosEngine::for_expected_interval(1000, 50);
        let mut rng = Xoshiro256StarStar::new(1);
        let prev = Hash256::ZERO;
        let out = engine.run(&prev, 1, &ms, &stakes, &mut rng);
        assert!(out.winner < 2);
        assert!(engine.verify(&prev, 1, &ms, &stakes, &out));
    }

    #[test]
    fn zero_stake_never_wins() {
        let ms = miners(2);
        let stakes = vec![0, 100];
        let engine = MlPosEngine::for_expected_interval(100, 10);
        let mut rng = Xoshiro256StarStar::new(2);
        let mut prev = Hash256::ZERO;
        for h in 0..200 {
            let out = engine.run(&prev, h, &ms, &stakes, &mut rng);
            assert_eq!(out.winner, 1);
            prev = HashBuilder::new("chain").hash(&prev).u64(h).finish();
        }
    }

    #[test]
    fn win_rate_proportional_to_stake() {
        // 20/80 split, small per-tick probability → win prob ≈ 0.2.
        let ms = miners(2);
        let stakes = vec![200, 800];
        let engine = MlPosEngine::for_expected_interval(1000, 100);
        let mut rng = Xoshiro256StarStar::new(3);
        let mut wins_a = 0u64;
        let n = 3000;
        let mut prev = Hash256::ZERO;
        for h in 0..n {
            let out = engine.run(&prev, h, &ms, &stakes, &mut rng);
            if out.winner == 0 {
                wins_a += 1;
            }
            prev = HashBuilder::new("chain")
                .hash(&prev)
                .hash(&out.proof_hash)
                .finish();
        }
        let frac = wins_a as f64 / n as f64;
        assert!((frac - 0.2).abs() < 0.033, "win fraction {frac}");
    }

    #[test]
    fn verify_rejects_wrong_timestamp() {
        let ms = miners(2);
        let stakes = vec![500, 500];
        let engine = MlPosEngine::for_expected_interval(1000, 20);
        let mut rng = Xoshiro256StarStar::new(4);
        let prev = Hash256::ZERO;
        let mut out = engine.run(&prev, 1, &ms, &stakes, &mut rng);
        out.elapsed_ticks += 1;
        assert!(!engine.verify(&prev, 1, &ms, &stakes, &out));
    }

    #[test]
    fn expected_interval_roughly_correct() {
        let ms = miners(2);
        let stakes = vec![300, 700];
        let engine = MlPosEngine::for_expected_interval(1000, 25);
        let mut rng = Xoshiro256StarStar::new(5);
        let mut total = 0u64;
        let n = 600;
        let mut prev = Hash256::ZERO;
        for h in 0..n {
            let out = engine.run(&prev, h, &ms, &stakes, &mut rng);
            total += out.elapsed_ticks;
            prev = HashBuilder::new("chain").hash(&prev).u64(h).finish();
        }
        let mean = total as f64 / n as f64;
        assert!(mean > 18.0 && mean < 33.0, "mean interval {mean}");
    }

    #[test]
    #[should_panic(expected = "positive total stake")]
    fn zero_total_stake_rejected() {
        let ms = miners(2);
        let engine = MlPosEngine::new(U256::ONE << 200u32);
        let mut rng = Xoshiro256StarStar::new(6);
        let _ = engine.run(&Hash256::ZERO, 1, &ms, &[0, 0], &mut rng);
    }
}
