//! Proof-of-Work lottery: literal nonce grinding (Section 2.1).
//!
//! Each tick, miner `i` checks `hash_rate_i` nonces; a nonce is valid when
//! `Hash("pow-trial", prev, pk, nonce) < target`. The first tick containing
//! a success ends the race; if several miners succeed in the same tick, the
//! smallest trial hash wins (deterministic fork resolution). With per-trial
//! success probability `p = target/2²⁵⁶`, miner `i`'s block count per tick
//! is Binomial(`rate_i`, `p`) ≈ Poisson(`rate_i·p`) — exactly the paper's
//! model, so the win probability converges to `H_A/(H_A + H_B)`.

use super::{check_inputs, BlockLottery, LotteryOutcome, MinerProfile};
use crate::hash::{Hash256, HashBuilder, HashMidstate};
use crate::u256::U256;
use rand::RngCore;

/// PoW engine parameterized by a difficulty target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PowEngine {
    target: U256,
    /// Safety valve: abort the tick loop after this many ticks (the target
    /// should make success overwhelmingly likely long before).
    max_ticks: u64,
}

impl PowEngine {
    /// Creates a PoW engine with the given target.
    ///
    /// # Panics
    /// Panics if the target is zero.
    #[must_use]
    pub fn new(target: U256) -> Self {
        assert!(!target.is_zero(), "PoW target must be positive");
        Self {
            target,
            max_ticks: 10_000_000,
        }
    }

    /// The difficulty target.
    #[must_use]
    pub fn target(&self) -> U256 {
        self.target
    }

    /// Replaces the target (difficulty retarget).
    pub fn set_target(&mut self, target: U256) {
        assert!(!target.is_zero(), "PoW target must be positive");
        self.target = target;
    }

    /// The hash of one nonce trial.
    #[must_use]
    pub fn trial_hash(prev: &Hash256, pubkey: &Hash256, nonce: u64) -> Hash256 {
        HashBuilder::new("pow-trial")
            .hash(prev)
            .hash(pubkey)
            .u64(nonce)
            .finish()
    }

    /// Midstate over the fixed trial-hash prefix `(prev, pubkey)`:
    /// grinding a nonce from it yields [`trial_hash`](Self::trial_hash)
    /// bit-for-bit at roughly a third of the cost (the domain and both
    /// hashes are absorbed once, and each candidate pays one compression
    /// instead of two plus the builder copies).
    #[must_use]
    pub fn trial_midstate(prev: &Hash256, pubkey: &Hash256) -> HashMidstate {
        HashBuilder::new("pow-trial")
            .hash(prev)
            .hash(pubkey)
            .midstate()
    }

    /// Whether a trial hash satisfies the target.
    #[must_use]
    pub fn trial_valid(&self, trial: &Hash256) -> bool {
        trial.to_u256() < self.target
    }

    /// Runs the nonce race with **per-miner parent tips** — the fork-aware
    /// variant of [`BlockLottery::run`] used when an adversary withholds
    /// blocks: miner `i` grinds on `tips[i]`, so public and private
    /// branches race on equal terms. With all tips equal this is exactly
    /// the ordinary lottery (and [`BlockLottery::run`] delegates here).
    ///
    /// # Panics
    /// Panics if `tips` or `stakes` length differs from `miners`, no miner
    /// has positive hash rate, or the target is so hard that no block is
    /// found within the internal safety bound.
    #[must_use]
    pub fn run_on_tips(
        &self,
        tips: &[Hash256],
        miners: &[MinerProfile],
        stakes: &[u64],
        rng: &mut dyn RngCore,
    ) -> LotteryOutcome {
        check_inputs(miners, stakes);
        assert_eq!(
            tips.len(),
            miners.len(),
            "tips length must match miner count"
        );
        assert!(
            miners.iter().any(|m| m.hash_rate > 0),
            "PoW needs at least one miner with positive hash rate"
        );
        // Each miner starts from a random nonce offset (real miners pick
        // random extraNonce ranges), then scans sequentially.
        let mut cursors: Vec<u64> = miners.iter().map(|_| rng.next_u64()).collect();
        // The trial prefix (tip, pubkey) is fixed for the whole race:
        // absorb it once per miner and grind every nonce from the
        // midstate — same digests, one compression per candidate.
        let midstates: Vec<HashMidstate> = miners
            .iter()
            .enumerate()
            .map(|(mi, miner)| Self::trial_midstate(&tips[mi], &miner.pubkey))
            .collect();
        for tick in 0..self.max_ticks {
            let mut best: Option<(Hash256, usize, u64)> = None;
            for (mi, miner) in miners.iter().enumerate() {
                // Batched per-miner grind: nonces are consecutive, so the
                // cursor is bumped once per tick instead of per trial.
                let start = cursors[mi];
                cursors[mi] = start.wrapping_add(miner.hash_rate);
                for off in 0..miner.hash_rate {
                    let nonce = start.wrapping_add(off);
                    let trial = midstates[mi].finish_u64(nonce);
                    if self.trial_valid(&trial) {
                        let candidate = (trial, mi, nonce);
                        let better = match &best {
                            None => true,
                            Some((h, _, _)) => trial < *h,
                        };
                        if better {
                            best = Some(candidate);
                        }
                    }
                }
            }
            if let Some((trial, winner, nonce)) = best {
                return LotteryOutcome {
                    winner,
                    elapsed_ticks: tick + 1,
                    nonce,
                    proof_hash: trial,
                };
            }
        }
        panic!(
            "PoW lottery found no block within {} ticks — target too hard",
            self.max_ticks
        );
    }
}

impl BlockLottery for PowEngine {
    fn name(&self) -> &'static str {
        "pow"
    }

    fn run(
        &self,
        prev: &Hash256,
        _height: u64,
        miners: &[MinerProfile],
        stakes: &[u64],
        rng: &mut dyn RngCore,
    ) -> LotteryOutcome {
        let tips = vec![*prev; miners.len()];
        self.run_on_tips(&tips, miners, stakes, rng)
    }

    fn verify(
        &self,
        prev: &Hash256,
        _height: u64,
        miners: &[MinerProfile],
        _stakes: &[u64],
        outcome: &LotteryOutcome,
    ) -> bool {
        let Some(miner) = miners.get(outcome.winner) else {
            return false;
        };
        let trial = Self::trial_hash(prev, &miner.pubkey, outcome.nonce);
        trial == outcome.proof_hash && self.trial_valid(&trial)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::difficulty::target_for_expected_interval;
    use fairness_stats::rng::Xoshiro256StarStar;

    fn miners(rates: &[u64]) -> Vec<MinerProfile> {
        rates
            .iter()
            .enumerate()
            .map(|(i, &r)| MinerProfile::new(i, r))
            .collect()
    }

    #[test]
    fn lottery_completes_and_verifies() {
        let ms = miners(&[4, 16]);
        let stakes = vec![0, 0];
        // Expect ~5 ticks per block at rate 20.
        let engine = PowEngine::new(target_for_expected_interval(20, 5));
        let mut rng = Xoshiro256StarStar::new(1);
        let prev = Hash256::ZERO;
        let out = engine.run(&prev, 1, &ms, &stakes, &mut rng);
        assert!(out.winner < 2);
        assert!(out.elapsed_ticks >= 1);
        assert!(engine.verify(&prev, 1, &ms, &stakes, &out));
    }

    #[test]
    fn verify_rejects_tampered_outcome() {
        let ms = miners(&[4, 16]);
        let stakes = vec![0, 0];
        let engine = PowEngine::new(target_for_expected_interval(20, 5));
        let mut rng = Xoshiro256StarStar::new(2);
        let prev = Hash256::ZERO;
        let mut out = engine.run(&prev, 1, &ms, &stakes, &mut rng);
        out.nonce = out.nonce.wrapping_add(1);
        assert!(!engine.verify(&prev, 1, &ms, &stakes, &out));
        let out2 = engine.run(&prev, 1, &ms, &stakes, &mut rng);
        let mut wrong_winner = out2;
        wrong_winner.winner = 5;
        assert!(!engine.verify(&prev, 1, &ms, &stakes, &wrong_winner));
    }

    #[test]
    fn win_rate_proportional_to_hash_power() {
        // H_A : H_B = 1 : 4 → A should win ≈ 20% of blocks.
        let ms = miners(&[2, 8]);
        let stakes = vec![0, 0];
        let engine = PowEngine::new(target_for_expected_interval(10, 4));
        let mut rng = Xoshiro256StarStar::new(3);
        let mut wins_a = 0u64;
        let n = 3000;
        let mut prev = Hash256::ZERO;
        for h in 0..n {
            let out = engine.run(&prev, h, &ms, &stakes, &mut rng);
            if out.winner == 0 {
                wins_a += 1;
            }
            // Chain the lotteries like real blocks.
            prev = HashBuilder::new("chain")
                .hash(&prev)
                .hash(&out.proof_hash)
                .finish();
        }
        let frac = wins_a as f64 / n as f64;
        // SE ≈ sqrt(0.2*0.8/3000) ≈ 0.0073; allow 4.5 sigma.
        assert!((frac - 0.2).abs() < 0.033, "win fraction {frac}");
    }

    #[test]
    fn elapsed_ticks_mean_matches_design() {
        let ms = miners(&[10]);
        let stakes = vec![0];
        let engine = PowEngine::new(target_for_expected_interval(10, 8));
        let mut rng = Xoshiro256StarStar::new(4);
        let mut total = 0u64;
        let n = 800;
        let mut prev = Hash256::ZERO;
        for h in 0..n {
            let out = engine.run(&prev, h, &ms, &stakes, &mut rng);
            total += out.elapsed_ticks;
            prev = HashBuilder::new("chain").hash(&prev).u64(h).finish();
        }
        let mean = total as f64 / n as f64;
        // Geometric-ish with mean ~8 ticks (discretization shifts it a bit).
        assert!(mean > 5.0 && mean < 12.0, "mean interval {mean}");
    }

    #[test]
    #[should_panic(expected = "target must be positive")]
    fn zero_target_rejected() {
        let _ = PowEngine::new(U256::ZERO);
    }

    #[test]
    #[should_panic(expected = "positive hash rate")]
    fn all_zero_rates_rejected() {
        let ms = miners(&[0, 0]);
        let engine = PowEngine::new(U256::MAX);
        let mut rng = Xoshiro256StarStar::new(5);
        let _ = engine.run(&Hash256::ZERO, 1, &ms, &[0, 0], &mut rng);
    }
}
