//! Addresses, accounts and the stake ledger.
//!
//! Stakes are integer "atoms" (like satoshi/wei) so that reward accounting
//! is exact: the ledger's total supply invariant (`initial + issued ==
//! Σ balances`) is checked in tests and property tests, mirroring the
//! paper's normalization where stakes sum to `1 + n·w` after `n` blocks.

use crate::hash::{Hash256, HashBuilder};
use std::collections::BTreeMap;
use std::fmt;

/// A 20-byte account address derived from a public key hash
/// (Ethereum-style truncation of the SHA-256 of the key).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Address(pub [u8; 20]);

impl Address {
    /// Derives an address from a public key hash.
    #[must_use]
    pub fn from_pubkey(pubkey: &Hash256) -> Self {
        let digest = HashBuilder::new("address").hash(pubkey).finish();
        let mut out = [0u8; 20];
        out.copy_from_slice(&digest.0[12..32]);
        Self(out)
    }

    /// Deterministic test/simulation address for miner `index`.
    #[must_use]
    pub fn for_miner(index: usize) -> Self {
        let pk = HashBuilder::new("miner-pubkey").u64(index as u64).finish();
        Self::from_pubkey(&pk)
    }
}

impl fmt::Debug for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x")?;
        for b in &self.0[..6] {
            write!(f, "{b:02x}")?;
        }
        write!(f, "…")
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x")?;
        for b in &self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

/// An account's spendable balance, in atoms. In the PoS engines the balance
/// *is* the staking power (Assumption 4: no top-up/withdrawal actions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Account {
    /// Balance in atoms.
    pub balance: u64,
    /// Monotonic transaction counter (replay protection).
    pub nonce: u64,
}

/// Errors from ledger operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LedgerError {
    /// Debit larger than the account balance.
    InsufficientFunds {
        /// Balance available.
        available: u64,
        /// Amount requested.
        requested: u64,
    },
    /// Transaction nonce does not match the account's next nonce.
    BadNonce {
        /// Nonce the ledger expected.
        expected: u64,
        /// Nonce supplied.
        got: u64,
    },
    /// Credit would overflow the balance or total supply.
    SupplyOverflow,
}

impl fmt::Display for LedgerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LedgerError::InsufficientFunds {
                available,
                requested,
            } => write!(f, "insufficient funds: have {available}, need {requested}"),
            LedgerError::BadNonce { expected, got } => {
                write!(f, "bad nonce: expected {expected}, got {got}")
            }
            LedgerError::SupplyOverflow => write!(f, "supply overflow"),
        }
    }
}

impl std::error::Error for LedgerError {}

/// The account ledger: balances plus total-supply accounting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Ledger {
    accounts: BTreeMap<Address, Account>,
    total_supply: u64,
}

impl Ledger {
    /// Creates an empty ledger.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a ledger pre-funded with `(address, balance)` pairs — the
    /// genesis stake allocation.
    #[must_use]
    pub fn with_genesis(alloc: &[(Address, u64)]) -> Self {
        let mut ledger = Self::new();
        for &(addr, amount) in alloc {
            ledger
                .credit(addr, amount)
                .expect("genesis allocation overflow");
        }
        ledger
    }

    /// Balance of `addr` (0 when absent).
    #[must_use]
    pub fn balance(&self, addr: &Address) -> u64 {
        self.accounts.get(addr).map_or(0, |a| a.balance)
    }

    /// Next expected nonce of `addr`.
    #[must_use]
    pub fn nonce(&self, addr: &Address) -> u64 {
        self.accounts.get(addr).map_or(0, |a| a.nonce)
    }

    /// Sum of all balances.
    #[must_use]
    pub fn total_supply(&self) -> u64 {
        self.total_supply
    }

    /// Number of accounts that have ever held funds.
    #[must_use]
    pub fn account_count(&self) -> usize {
        self.accounts.len()
    }

    /// Credits `amount` atoms to `addr` (new supply, e.g. block reward).
    pub fn credit(&mut self, addr: Address, amount: u64) -> Result<(), LedgerError> {
        let account = self.accounts.entry(addr).or_default();
        account.balance = account
            .balance
            .checked_add(amount)
            .ok_or(LedgerError::SupplyOverflow)?;
        self.total_supply = self
            .total_supply
            .checked_add(amount)
            .ok_or(LedgerError::SupplyOverflow)?;
        Ok(())
    }

    /// Transfers between accounts, enforcing funds and nonce.
    pub fn transfer(
        &mut self,
        from: Address,
        to: Address,
        amount: u64,
        nonce: u64,
    ) -> Result<(), LedgerError> {
        let sender = self.accounts.entry(from).or_default();
        if sender.nonce != nonce {
            return Err(LedgerError::BadNonce {
                expected: sender.nonce,
                got: nonce,
            });
        }
        if sender.balance < amount {
            return Err(LedgerError::InsufficientFunds {
                available: sender.balance,
                requested: amount,
            });
        }
        sender.balance -= amount;
        sender.nonce += 1;
        let recipient = self.accounts.entry(to).or_default();
        recipient.balance = recipient
            .balance
            .checked_add(amount)
            .ok_or(LedgerError::SupplyOverflow)?;
        Ok(())
    }

    /// Iterates over `(address, account)` pairs in address order.
    pub fn iter(&self) -> impl Iterator<Item = (&Address, &Account)> {
        self.accounts.iter()
    }

    /// Verifies the supply invariant: Σ balances == recorded total supply.
    #[must_use]
    pub fn check_supply_invariant(&self) -> bool {
        let sum: u128 = self.accounts.values().map(|a| a.balance as u128).sum();
        sum == self.total_supply as u128
    }
}

/// Splits `total` atoms among recipients proportionally to `weights`, with
/// the remainder assigned by the largest-remainder method so the split is
/// exact (`Σ shares == total`) — used for the C-PoS inflation (attester)
/// reward which the paper distributes "proportional to their possessed
/// stakes".
///
/// # Panics
/// Panics if `weights` is empty or sums to zero while `total > 0`.
#[must_use]
pub fn proportional_split(total: u64, weights: &[u64]) -> Vec<u64> {
    assert!(!weights.is_empty(), "proportional_split needs recipients");
    let weight_sum: u128 = weights.iter().map(|&w| w as u128).sum();
    if total == 0 {
        return vec![0; weights.len()];
    }
    assert!(weight_sum > 0, "proportional_split with zero total weight");
    // Floor shares plus remainders.
    let mut shares: Vec<u64> = Vec::with_capacity(weights.len());
    let mut remainders: Vec<(u128, usize)> = Vec::with_capacity(weights.len());
    let mut assigned: u64 = 0;
    for (i, &w) in weights.iter().enumerate() {
        let numer = total as u128 * w as u128;
        let share = (numer / weight_sum) as u64;
        let rem = numer % weight_sum;
        shares.push(share);
        remainders.push((rem, i));
        assigned += share;
    }
    // Hand out the leftover atoms to the largest remainders (ties broken by
    // lower index for determinism).
    let mut leftover = total - assigned;
    remainders.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut k = 0;
    while leftover > 0 {
        shares[remainders[k].1] += 1;
        leftover -= 1;
        k = (k + 1) % remainders.len();
    }
    shares
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addresses_are_deterministic_and_distinct() {
        assert_eq!(Address::for_miner(0), Address::for_miner(0));
        assert_ne!(Address::for_miner(0), Address::for_miner(1));
    }

    #[test]
    fn genesis_allocation() {
        let a = Address::for_miner(0);
        let b = Address::for_miner(1);
        let ledger = Ledger::with_genesis(&[(a, 200), (b, 800)]);
        assert_eq!(ledger.balance(&a), 200);
        assert_eq!(ledger.balance(&b), 800);
        assert_eq!(ledger.total_supply(), 1000);
        assert!(ledger.check_supply_invariant());
    }

    #[test]
    fn credit_increases_supply() {
        let mut ledger = Ledger::new();
        let a = Address::for_miner(0);
        ledger.credit(a, 50).expect("credit");
        ledger.credit(a, 25).expect("credit");
        assert_eq!(ledger.balance(&a), 75);
        assert_eq!(ledger.total_supply(), 75);
    }

    #[test]
    fn transfer_conserves_supply() {
        let a = Address::for_miner(0);
        let b = Address::for_miner(1);
        let mut ledger = Ledger::with_genesis(&[(a, 100)]);
        ledger.transfer(a, b, 40, 0).expect("transfer");
        assert_eq!(ledger.balance(&a), 60);
        assert_eq!(ledger.balance(&b), 40);
        assert_eq!(ledger.total_supply(), 100);
        assert!(ledger.check_supply_invariant());
    }

    #[test]
    fn transfer_enforces_funds_and_nonce() {
        let a = Address::for_miner(0);
        let b = Address::for_miner(1);
        let mut ledger = Ledger::with_genesis(&[(a, 10)]);
        assert_eq!(
            ledger.transfer(a, b, 20, 0),
            Err(LedgerError::InsufficientFunds {
                available: 10,
                requested: 20
            })
        );
        assert_eq!(
            ledger.transfer(a, b, 5, 3),
            Err(LedgerError::BadNonce {
                expected: 0,
                got: 3
            })
        );
        ledger.transfer(a, b, 5, 0).expect("first transfer");
        // Nonce advanced.
        assert_eq!(
            ledger.transfer(a, b, 1, 0),
            Err(LedgerError::BadNonce {
                expected: 1,
                got: 0
            })
        );
    }

    #[test]
    fn credit_overflow_detected() {
        let mut ledger = Ledger::new();
        let a = Address::for_miner(0);
        ledger.credit(a, u64::MAX).expect("first credit");
        assert_eq!(ledger.credit(a, 1), Err(LedgerError::SupplyOverflow));
    }

    #[test]
    fn proportional_split_exact() {
        let shares = proportional_split(100, &[1, 1, 1]);
        assert_eq!(shares.iter().sum::<u64>(), 100);
        // 33/33/33 plus one remainder atom.
        assert!(shares.iter().all(|&s| s == 33 || s == 34));

        let shares = proportional_split(10, &[200, 800]);
        assert_eq!(shares, vec![2, 8]);

        let shares = proportional_split(7, &[1, 2, 4]);
        assert_eq!(shares.iter().sum::<u64>(), 7);
        assert_eq!(shares, vec![1, 2, 4]);
    }

    #[test]
    fn proportional_split_zero_total() {
        assert_eq!(proportional_split(0, &[5, 5]), vec![0, 0]);
    }

    #[test]
    fn proportional_split_respects_proportions_at_scale() {
        let total = 1_000_000_007u64;
        let weights = [200_000u64, 300_000, 500_000];
        let shares = proportional_split(total, &weights);
        assert_eq!(shares.iter().sum::<u64>(), total);
        for (s, w) in shares.iter().zip(&weights) {
            let expect = total as f64 * *w as f64 / 1_000_000.0;
            assert!((*s as f64 - expect).abs() <= 1.0, "{s} vs {expect}");
        }
    }

    #[test]
    #[should_panic(expected = "zero total weight")]
    fn proportional_split_rejects_zero_weights() {
        let _ = proportional_split(10, &[0, 0]);
    }
}
