//! Multi-node network simulation.
//!
//! [`NetworkSim`] plays the role of the paper's EC2 deployments (two Geth,
//! Qtum or NXT nodes mining against each other): it maintains a real chain
//! with Merkle-committed bodies, a ledger with exact stake accounting, a
//! mempool fed by synthetic user traffic, and a consensus engine running
//! the hash-level lottery for every block. [`CPosSim`] is the epoch-based
//! equivalent for C-PoS.

use super::EventQueue;
use crate::account::{Address, Ledger};
use crate::block::Block;
use crate::chain::{Chain, ChainError};
use crate::consensus::{
    BlockLottery, CPosEngine, EpochOutcome, FslPosEngine, MinerProfile, MlPosEngine, PowEngine,
    SlPosEngine,
};
use crate::hash::Hash256;
use crate::mempool::Mempool;
use crate::transaction::Transaction;
use crate::u256::U256;
use rand::{Rng, RngCore};

/// A block-lottery engine selection.
#[derive(Debug, Clone)]
pub enum Engine {
    /// Proof-of-Work (Section 2.1).
    Pow(PowEngine),
    /// Multi-lottery PoS (Section 2.2).
    MlPos(MlPosEngine),
    /// Single-lottery PoS (Section 2.3).
    SlPos(SlPosEngine),
    /// Fair single-lottery PoS (Section 6.2).
    FslPos(FslPosEngine),
}

impl Engine {
    fn as_lottery(&self) -> &dyn BlockLottery {
        match self {
            Engine::Pow(e) => e,
            Engine::MlPos(e) => e,
            Engine::SlPos(e) => e,
            Engine::FslPos(e) => e,
        }
    }

    /// Engine name for reports.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.as_lottery().name()
    }

    /// Runs the block lottery with **per-miner parent tips**, so a
    /// withholding miner's private branch races the public branch on equal
    /// terms (see [`super::fork::ForkNetSim`]). Tip racing is implemented
    /// for the engines whose lotteries are per-block races — PoW and
    /// SL-PoS; the kernel/treated engines (ML-PoS, FSL-PoS) have no
    /// adversarial fork model here yet.
    ///
    /// # Panics
    /// Panics for ML-PoS/FSL-PoS engines, or on invalid inputs (length
    /// mismatches, no viable miner).
    #[must_use]
    pub fn run_on_tips(
        &self,
        tips: &[Hash256],
        miners: &[MinerProfile],
        stakes: &[u64],
        rng: &mut dyn RngCore,
    ) -> crate::consensus::LotteryOutcome {
        match self {
            Engine::Pow(e) => e.run_on_tips(tips, miners, stakes, rng),
            Engine::SlPos(e) => e.run_on_tips(tips, miners, stakes),
            Engine::MlPos(_) | Engine::FslPos(_) => {
                panic!("tip racing is implemented for PoW and SL-PoS engines only")
            }
        }
    }
}

/// Bitcoin-style periodic difficulty retargeting for PoW networks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PowRetarget {
    /// Retarget every this many blocks (Bitcoin: 2016).
    pub every_blocks: u64,
    /// Design block interval in ticks.
    pub target_interval: u64,
}

/// Configuration of a block-lottery network.
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// Consensus engine.
    pub engine: Engine,
    /// Initial stake per miner, in atoms (PoS engines read these; PoW
    /// ignores them for the lottery but they still live in the ledger).
    pub initial_stakes: Vec<u64>,
    /// Hash rate per miner (PoW only).
    pub hash_rates: Vec<u64>,
    /// Block reward in atoms (the paper's `w`, scaled by the atom unit).
    pub block_reward: u64,
    /// Synthetic user transactions included per block.
    pub txs_per_block: usize,
    /// Block propagation delay in ticks, added to the clock per block.
    pub propagation_delay: u64,
    /// Optional PoW difficulty retargeting rule.
    pub pow_retarget: Option<PowRetarget>,
}

impl NetworkConfig {
    fn miner_count(&self) -> usize {
        self.initial_stakes.len().max(self.hash_rates.len())
    }
}

/// Internal network events.
#[derive(Debug, Clone, Copy)]
enum NetEvent {
    /// A synthetic user transfer enters the mempool.
    TxArrival { user: usize },
}

/// A running block-lottery network.
#[derive(Debug)]
pub struct NetworkSim {
    config: NetworkConfig,
    miners: Vec<MinerProfile>,
    /// Per-miner staking power in atoms, kept in lock-step with the ledger.
    stakes: Vec<u64>,
    wins: Vec<u64>,
    chain: Chain,
    ledger: Ledger,
    mempool: Mempool,
    events: EventQueue<NetEvent>,
    clock: u64,
    /// Synthetic user population (non-miner accounts feeding the mempool).
    users: Vec<Address>,
    user_nonces: Vec<u64>,
    /// Clock value at the last PoW retarget boundary.
    last_retarget_clock: u64,
}

impl NetworkSim {
    /// Funds granted to each synthetic user at genesis.
    const USER_FUNDS: u64 = 1_000_000;
    /// Number of synthetic users.
    const USER_COUNT: usize = 8;

    /// Builds the network: genesis block, genesis stake allocation, miner
    /// profiles and initial user traffic schedule.
    ///
    /// # Panics
    /// Panics if no miners are configured.
    #[must_use]
    pub fn new(config: NetworkConfig, rng: &mut dyn RngCore) -> Self {
        let m = config.miner_count();
        assert!(m > 0, "network needs at least one miner");
        let miners: Vec<MinerProfile> = (0..m)
            .map(|i| MinerProfile::new(i, config.hash_rates.get(i).copied().unwrap_or(0)))
            .collect();
        let mut stakes = config.initial_stakes.clone();
        stakes.resize(m, 0);

        // Genesis allocation: miner stakes plus synthetic user balances.
        let mut alloc: Vec<(Address, u64)> = miners
            .iter()
            .zip(&stakes)
            .map(|(mp, &s)| (mp.address, s))
            .collect();
        let users: Vec<Address> = (0..Self::USER_COUNT)
            .map(|i| Address::for_miner(1000 + i))
            .collect();
        for &u in &users {
            alloc.push((u, Self::USER_FUNDS));
        }
        let ledger = Ledger::with_genesis(&alloc);

        let genesis = Block::assemble(0, Hash256::ZERO, 0, U256::MAX, 0, miners[0].address, vec![]);
        let chain = Chain::new(genesis);

        let mut events = EventQueue::new();
        // Seed a little initial user traffic.
        for (i, _) in users.iter().enumerate() {
            events.schedule(rng.gen_range(1..20), NetEvent::TxArrival { user: i });
        }

        Self {
            wins: vec![0; m],
            miners,
            stakes,
            chain,
            ledger,
            mempool: Mempool::new(),
            events,
            clock: 0,
            user_nonces: vec![0; users.len()],
            users,
            config,
            last_retarget_clock: 0,
        }
    }

    /// The simulated clock, in ticks.
    #[must_use]
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// The chain.
    #[must_use]
    pub fn chain(&self) -> &Chain {
        &self.chain
    }

    /// The ledger.
    #[must_use]
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// Current staking power of miner `i`, in atoms.
    #[must_use]
    pub fn stake(&self, i: usize) -> u64 {
        self.stakes[i]
    }

    /// Blocks won by miner `i` (excluding genesis).
    #[must_use]
    pub fn wins(&self, i: usize) -> u64 {
        self.wins[i]
    }

    /// Fraction of blocks won by miner `i` — the measured `λ_i`.
    #[must_use]
    pub fn win_fraction(&self, i: usize) -> f64 {
        let n = self.chain.height();
        if n == 0 {
            0.0
        } else {
            self.wins[i] as f64 / n as f64
        }
    }

    /// Drains due user-traffic events into the mempool.
    fn pump_traffic(&mut self, rng: &mut dyn RngCore) {
        while self.events.peek_time().is_some_and(|t| t <= self.clock) {
            let (_, event) = self.events.pop().expect("peeked event");
            match event {
                NetEvent::TxArrival { user } => {
                    let from = self.users[user];
                    let to = self.users
                        [(user + 1 + rng.gen_range(0..self.users.len() - 1)) % self.users.len()];
                    let amount = rng.gen_range(1..100u64);
                    if self.ledger.balance(&from) > amount {
                        let tx = Transaction::transfer(from, to, amount, 0, self.user_nonces[user]);
                        if self.mempool.insert(tx) {
                            self.user_nonces[user] += 1;
                        }
                    }
                    // Re-schedule this user's next transfer.
                    let next = self.clock + rng.gen_range(5..50u64);
                    self.events.schedule(next, NetEvent::TxArrival { user });
                }
            }
        }
    }

    /// Mines one block end-to-end: lottery, block assembly, validation,
    /// ledger application, stake update.
    ///
    /// # Panics
    /// Panics if internal consistency is violated (a bug, not an input
    /// error) — e.g. a self-produced block failing validation.
    pub fn step_block(&mut self, rng: &mut dyn RngCore) {
        let prev = self.chain.tip().hash();
        let height = self.chain.height() + 1;
        let outcome =
            self.config
                .engine
                .as_lottery()
                .run(&prev, height, &self.miners, &self.stakes, rng);
        self.clock += outcome.elapsed_ticks + self.config.propagation_delay;
        self.pump_traffic(rng);

        let winner = &self.miners[outcome.winner];
        let mut txs = vec![Transaction::coinbase(
            winner.address,
            self.config.block_reward,
            height,
        )];
        txs.extend(self.mempool.take_highest_fee(self.config.txs_per_block));

        let target = match &self.config.engine {
            Engine::Pow(e) => e.target(),
            Engine::MlPos(e) => e.difficulty(),
            _ => U256::MAX,
        };
        let block = Block::assemble(
            height,
            prev,
            self.clock,
            target,
            outcome.nonce,
            winner.address,
            txs,
        );
        let engine = self.config.engine.as_lottery();
        let miners = &self.miners;
        let stakes = &self.stakes;
        self.chain
            .try_append(block, |b| {
                b.header.proposer == miners[outcome.winner].address
                    && engine.verify(&prev, height, miners, stakes, &outcome)
            })
            .expect("self-produced block must validate");

        // Apply the block to the ledger.
        let applied = self.chain.tip().transactions.clone();
        for tx in &applied {
            match tx.kind {
                crate::transaction::TxKind::Coinbase { to, reward, .. } => {
                    self.ledger.credit(to, reward).expect("reward credit");
                }
                crate::transaction::TxKind::Transfer {
                    from,
                    to,
                    amount,
                    nonce,
                    ..
                } => {
                    // Synthetic traffic is pre-validated; a failure here is
                    // a sequencing bug worth surfacing loudly in sims.
                    self.ledger
                        .transfer(from, to, amount, nonce)
                        .expect("mempool transaction must apply");
                }
            }
        }
        self.stakes[outcome.winner] += self.config.block_reward;
        self.wins[outcome.winner] += 1;
        // Per-block retarget keeps ML-PoS intervals at design value as the
        // staked supply grows (see MlPosEngine::retarget).
        if let Engine::MlPos(e) = &mut self.config.engine {
            let total: u64 = self.stakes.iter().sum();
            e.retarget(total);
        }
        // Bitcoin-style epoch retarget for PoW.
        if let Some(rule) = self.config.pow_retarget {
            if self.chain.height().is_multiple_of(rule.every_blocks) {
                if let Engine::Pow(e) = &mut self.config.engine {
                    let actual = (self.clock - self.last_retarget_clock).max(1);
                    let expected = rule.target_interval * rule.every_blocks;
                    e.set_target(crate::difficulty::bitcoin_retarget(
                        e.target(),
                        actual,
                        expected,
                    ));
                    self.last_retarget_clock = self.clock;
                }
            }
        }
        debug_assert!(self.ledger.check_supply_invariant());
        debug_assert_eq!(
            self.stakes[outcome.winner],
            self.ledger.balance(&self.miners[outcome.winner].address),
            "stake cache must mirror ledger"
        );
    }

    /// Mines `n` blocks.
    pub fn run_blocks(&mut self, n: u64, rng: &mut dyn RngCore) {
        for _ in 0..n {
            self.step_block(rng);
        }
    }
}

/// Epoch-based C-PoS network (Section 2.4). Each epoch appends one block
/// per shard and distributes proposer + attester rewards exactly.
#[derive(Debug)]
pub struct CPosSim {
    engine: CPosEngine,
    miners: Vec<MinerProfile>,
    stakes: Vec<u64>,
    /// Total atoms earned by each miner since genesis.
    earned: Vec<u64>,
    chain: Chain,
    ledger: Ledger,
    epoch: u64,
    clock: u64,
    /// Ticks per epoch (Ethereum 2.0: 32 slots × 12 s).
    epoch_ticks: u64,
}

impl CPosSim {
    /// Builds a C-PoS network with the given engine and initial stakes.
    ///
    /// # Panics
    /// Panics if `initial_stakes` is empty.
    #[must_use]
    pub fn new(engine: CPosEngine, initial_stakes: &[u64], epoch_ticks: u64) -> Self {
        assert!(!initial_stakes.is_empty(), "C-PoS needs at least one miner");
        let miners: Vec<MinerProfile> = (0..initial_stakes.len())
            .map(|i| MinerProfile::new(i, 0))
            .collect();
        let alloc: Vec<(Address, u64)> = miners
            .iter()
            .zip(initial_stakes)
            .map(|(mp, &s)| (mp.address, s))
            .collect();
        let ledger = Ledger::with_genesis(&alloc);
        let genesis = Block::assemble(0, Hash256::ZERO, 0, U256::MAX, 0, miners[0].address, vec![]);
        Self {
            engine,
            earned: vec![0; initial_stakes.len()],
            stakes: initial_stakes.to_vec(),
            miners,
            chain: Chain::new(genesis),
            ledger,
            epoch: 0,
            clock: 0,
            epoch_ticks,
        }
    }

    /// Completed epochs.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The chain (one block per shard per epoch).
    #[must_use]
    pub fn chain(&self) -> &Chain {
        &self.chain
    }

    /// The ledger.
    #[must_use]
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// Current stake of miner `i`.
    #[must_use]
    pub fn stake(&self, i: usize) -> u64 {
        self.stakes[i]
    }

    /// Reward fraction earned by miner `i` so far — the paper's `λ_i` for
    /// C-PoS (`earned / ((w+v)·epochs)`).
    #[must_use]
    pub fn reward_fraction(&self, i: usize) -> f64 {
        let issued = self.epoch * (self.engine.proposer_reward() + self.engine.attester_reward());
        if issued == 0 {
            0.0
        } else {
            self.earned[i] as f64 / issued as f64
        }
    }

    /// Runs one epoch: shard lotteries, shard blocks, exact reward split.
    pub fn step_epoch(&mut self, rng: &mut dyn RngCore) -> EpochOutcome {
        let prev = self.chain.tip().hash();
        let outcome = self
            .engine
            .run_epoch(&prev, self.epoch, &self.miners, &self.stakes, rng);
        self.clock += self.epoch_ticks;
        // One block per shard; rewards are settled at epoch end below, so
        // shard blocks carry no coinbase (Ethereum 2.0 separates issuance).
        for (shard, &proposer) in outcome.shard_proposers.iter().enumerate() {
            let height = self.chain.height() + 1;
            let parent = self.chain.tip().hash();
            let block = Block::assemble(
                height,
                parent,
                self.clock - self.epoch_ticks + 1 + shard as u64,
                U256::MAX,
                0,
                self.miners[proposer].address,
                vec![],
            );
            self.chain
                .try_append(block, |_| true)
                .expect("self-produced shard block must validate");
        }
        for (i, &reward) in outcome.rewards.iter().enumerate() {
            if reward > 0 {
                self.ledger
                    .credit(self.miners[i].address, reward)
                    .expect("epoch reward credit");
                self.stakes[i] += reward;
                self.earned[i] += reward;
            }
        }
        self.epoch += 1;
        debug_assert!(self.ledger.check_supply_invariant());
        outcome
    }

    /// Runs `n` epochs.
    pub fn run_epochs(&mut self, n: u64, rng: &mut dyn RngCore) {
        for _ in 0..n {
            self.step_epoch(rng);
        }
    }
}

/// Convenience: the error type chains surface on invalid appends.
pub type NetworkError = ChainError;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::difficulty::target_for_expected_interval;
    use fairness_stats::rng::Xoshiro256StarStar;

    fn mlpos_config(stakes: Vec<u64>, reward: u64) -> NetworkConfig {
        let total: u64 = stakes.iter().sum();
        NetworkConfig {
            engine: Engine::MlPos(MlPosEngine::for_expected_interval(total, 20)),
            initial_stakes: stakes,
            hash_rates: vec![],
            block_reward: reward,
            txs_per_block: 4,
            propagation_delay: 2,
            pow_retarget: None,
        }
    }

    #[test]
    fn mlpos_network_mines_and_accounts() {
        let mut rng = Xoshiro256StarStar::new(1);
        let mut net = NetworkSim::new(mlpos_config(vec![200_000, 800_000], 10_000), &mut rng);
        net.run_blocks(50, &mut rng);
        assert_eq!(net.chain().height(), 50);
        // Supply: genesis (1e6 stakes + 8 users × 1e6) + 50 rewards.
        let expect_supply = 1_000_000 + 8 * 1_000_000 + 50 * 10_000;
        assert_eq!(net.ledger().total_supply(), expect_supply);
        assert!(net.ledger().check_supply_invariant());
        // Stake mirrors ledger.
        assert_eq!(net.stake(0), net.ledger().balance(&Address::for_miner(0)));
        // Wins sum to height.
        assert_eq!(net.wins(0) + net.wins(1), 50);
        let lam = net.win_fraction(0) + net.win_fraction(1);
        assert!((lam - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pow_network_with_difficulty() {
        let mut rng = Xoshiro256StarStar::new(2);
        let config = NetworkConfig {
            engine: Engine::Pow(PowEngine::new(target_for_expected_interval(10, 5))),
            initial_stakes: vec![0, 0],
            hash_rates: vec![2, 8],
            block_reward: 100,
            txs_per_block: 2,
            propagation_delay: 1,
            pow_retarget: None,
        };
        let mut net = NetworkSim::new(config, &mut rng);
        net.run_blocks(30, &mut rng);
        assert_eq!(net.chain().height(), 30);
        assert!(net.clock() > 30, "clock advances with lottery time");
    }

    #[test]
    fn slpos_network_rich_accumulates() {
        let mut rng = Xoshiro256StarStar::new(3);
        let config = NetworkConfig {
            engine: Engine::SlPos(SlPosEngine::new(1_000)),
            initial_stakes: vec![200_000, 800_000],
            hash_rates: vec![],
            block_reward: 10_000,
            txs_per_block: 0,
            propagation_delay: 0,
            pow_retarget: None,
        };
        let mut net = NetworkSim::new(config, &mut rng);
        net.run_blocks(400, &mut rng);
        // Rich miner should win clearly more than her 80% share over time
        // (SL-PoS advantage compounding).
        let frac_b = net.win_fraction(1);
        assert!(frac_b > 0.8, "rich miner fraction {frac_b}");
    }

    #[test]
    fn chain_bodies_carry_user_transactions() {
        let mut rng = Xoshiro256StarStar::new(4);
        let mut net = NetworkSim::new(mlpos_config(vec![500_000, 500_000], 1_000), &mut rng);
        net.run_blocks(40, &mut rng);
        let user_txs: usize = net
            .chain()
            .iter()
            .map(|b| b.transactions.iter().filter(|t| !t.is_coinbase()).count())
            .sum();
        assert!(user_txs > 0, "synthetic traffic should land in blocks");
        // All blocks internally consistent.
        for b in net.chain().iter() {
            assert!(b.merkle_root_valid());
        }
    }

    #[test]
    fn pow_retarget_recovers_design_interval() {
        // Start with a target 8× too easy (expected interval 1 tick instead
        // of 8); retargeting every 32 blocks should pull the realized
        // interval back toward the design value.
        let mut rng = Xoshiro256StarStar::new(17);
        let design_interval = 8u64;
        let config = NetworkConfig {
            engine: Engine::Pow(PowEngine::new(target_for_expected_interval(10, 1))),
            initial_stakes: vec![0, 0],
            hash_rates: vec![2, 8],
            block_reward: 100,
            txs_per_block: 0,
            propagation_delay: 0,
            pow_retarget: Some(PowRetarget {
                every_blocks: 32,
                target_interval: design_interval,
            }),
        };
        let mut net = NetworkSim::new(config, &mut rng);
        // Burn-in through several retarget epochs.
        net.run_blocks(320, &mut rng);
        let clock_before = net.clock();
        let height_before = net.chain().height();
        net.run_blocks(160, &mut rng);
        let realized =
            (net.clock() - clock_before) as f64 / (net.chain().height() - height_before) as f64;
        assert!(
            (realized - design_interval as f64).abs() < design_interval as f64 * 0.5,
            "realized interval {realized} vs design {design_interval}"
        );
    }

    #[test]
    fn cpos_sim_epoch_accounting() {
        let engine = CPosEngine::new(32, 1_000, 10_000);
        let mut sim = CPosSim::new(engine, &[200_000, 800_000], 384);
        let mut rng = Xoshiro256StarStar::new(5);
        sim.run_epochs(20, &mut rng);
        assert_eq!(sim.epoch(), 20);
        // 32 shard blocks per epoch.
        assert_eq!(sim.chain().height(), 20 * 32);
        // Supply grew by exactly (w + v) per epoch.
        assert_eq!(sim.ledger().total_supply(), 1_000_000 + 20 * 11_000);
        // Reward fractions sum to 1.
        let total_frac = sim.reward_fraction(0) + sim.reward_fraction(1);
        assert!((total_frac - 1.0).abs() < 1e-9, "{total_frac}");
    }

    #[test]
    fn cpos_reward_fraction_near_stake_share() {
        let engine = CPosEngine::new(32, 1_000, 10_000);
        let mut sim = CPosSim::new(engine, &[200_000, 800_000], 384);
        let mut rng = Xoshiro256StarStar::new(6);
        sim.run_epochs(200, &mut rng);
        let f = sim.reward_fraction(0);
        // Inflation-dominated: should be near 0.2 quickly.
        assert!((f - 0.2).abs() < 0.05, "fraction {f}");
    }
}
