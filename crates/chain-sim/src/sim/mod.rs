//! Discrete-event simulation scaffolding.
//!
//! The network simulation is event-driven: lotteries produce blocks at
//! simulated tick times, blocks propagate to peers after a configurable
//! delay, and the clock only ever moves forward. [`EventQueue`] is a
//! deterministic priority queue (ties broken by insertion order) shared by
//! the network harness.

pub mod experiment;
pub mod fork;
pub mod network;

pub use experiment::{ExperimentConfig, ExperimentOutcome, ProtocolKind};
pub use fork::{ForkNetConfig, ForkNetSim};
pub use network::{NetworkConfig, NetworkSim};

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A deterministic time-ordered event queue.
///
/// Events at equal times pop in insertion order, so simulations are
/// reproducible regardless of how events were generated.
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(u64, u64, EventSlot<E>)>>,
    seq: u64,
}

/// Wrapper making the payload inert for ordering purposes.
#[derive(Debug, Clone)]
struct EventSlot<E>(E);

impl<E> PartialEq for EventSlot<E> {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl<E> Eq for EventSlot<E> {}
impl<E> PartialOrd for EventSlot<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for EventSlot<E> {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` at absolute time `at`.
    pub fn schedule(&mut self, at: u64, event: E) {
        self.heap.push(Reverse((at, self.seq, EventSlot(event))));
        self.seq += 1;
    }

    /// Pops the earliest event as `(time, event)`.
    pub fn pop(&mut self) -> Option<(u64, E)> {
        self.heap.pop().map(|Reverse((t, _, slot))| (t, slot.0))
    }

    /// Time of the next event without popping.
    #[must_use]
    pub fn peek_time(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse((t, _, _))| *t)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, "c");
        q.schedule(10, "a");
        q.schedule(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(5, 1);
        q.schedule(5, 2);
        q.schedule(5, 3);
        assert_eq!(q.pop(), Some((5, 1)));
        assert_eq!(q.pop(), Some((5, 2)));
        assert_eq!(q.pop(), Some((5, 3)));
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(7, ());
        q.schedule(3, ());
        assert_eq!(q.peek_time(), Some(3));
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
    }
}
