//! Fork-aware adversarial network simulation — the hash-level counterpart
//! of `fairness_core::adversary`.
//!
//! [`super::network::NetworkSim`] never withholds a block: every lottery
//! winner immediately extends the single public chain. [`ForkNetSim`]
//! drops that assumption for one strategic miner (index 0): she maintains
//! a *private branch*, the consensus engine races public and private tips
//! on equal terms ([`Engine::run_on_tips`]), and her
//! [`Strategy`] decides after every block whether to keep withholding,
//! publish (reorging the network onto a longer branch, or opening an
//! equal-length tip race in which a fraction γ of honest power mines on
//! her tip), or adopt the public chain.
//!
//! Stake grinding is implemented mechanically: when the attacker assembles
//! a block on an SL-PoS chain she tries up to `tries` candidate nonces —
//! each changes the block hash and therefore every miner's next hit — and
//! keeps the first candidate under which she wins the next lottery (hits
//! are public, so this is computable by any node). At `tries = 1` the sim
//! is bit-identical to honest mining, and at frozen stakes the win rate
//! follows `fairness_stats::dist::stake_grinding_win_probability`
//! (enforced by tests below).
//!
//! Blocks are real [`Block`]s (header-hash-linked, carrying their coinbase)
//! but branches settle into win/stake counters rather than a
//! [`crate::chain::Chain`] — the fairness metrics need settled ownership,
//! and reorg-capable ledger replay is out of scope for this harness.

use crate::block::Block;
use crate::consensus::{MinerProfile, NoRng};
use crate::hash::Hash256;
use crate::sim::network::Engine;
use crate::transaction::Transaction;
use crate::u256::U256;
use fairness_core::adversary::{ForkAction, ForkEvent, ForkState, Strategy};
use rand::RngCore;

/// Configuration of a fork-aware adversarial network. Miner 0 is the
/// strategic miner; everyone else follows the longest published chain.
#[derive(Debug, Clone)]
pub struct ForkNetConfig {
    /// Consensus engine (PoW or SL-PoS — the per-block race engines).
    pub engine: Engine,
    /// Initial stake per miner, in atoms (PoS lottery weight).
    pub initial_stakes: Vec<u64>,
    /// Hash rate per miner (PoW lottery weight).
    pub hash_rates: Vec<u64>,
    /// Reward per settled block, in atoms (may be zero to freeze stakes).
    pub block_reward: u64,
    /// Salt folded into the genesis nonce. SL-PoS lotteries draw all
    /// randomness from the chain itself, so without a distinct salt every
    /// repetition of a zero-reward SL-PoS simulation replays the identical
    /// block sequence; Monte-Carlo harnesses pass the repetition index.
    pub genesis_salt: u64,
}

impl ForkNetConfig {
    fn miner_count(&self) -> usize {
        self.initial_stakes.len().max(self.hash_rates.len())
    }
}

/// A running fork-aware network: one strategic miner racing the honest
/// majority. See the module docs for the model.
#[derive(Debug)]
pub struct ForkNetSim<S: Strategy> {
    engine: Engine,
    strategy: S,
    block_reward: u64,
    miners: Vec<MinerProfile>,
    /// Settled staking power per miner (initial stake + settled rewards).
    stakes: Vec<u64>,
    /// Settled main-chain blocks per miner (excluding genesis).
    wins: Vec<u64>,
    /// The settled main chain, genesis first.
    settled: Vec<Block>,
    /// The attacker's withheld branch since the fork point.
    private: Vec<Block>,
    /// The honest branch since the fork point.
    public_fork: Vec<Block>,
    /// Whether the attacker's branch is published at equal length.
    published: bool,
    /// Orphaned blocks (never counted as revenue).
    orphaned: u64,
    clock: u64,
}

impl<S: Strategy> ForkNetSim<S> {
    /// Builds the network at genesis.
    ///
    /// # Panics
    /// Panics if no miners are configured.
    #[must_use]
    pub fn new(config: ForkNetConfig, strategy: S) -> Self {
        let m = config.miner_count();
        assert!(m > 0, "fork network needs at least one miner");
        let miners: Vec<MinerProfile> = (0..m)
            .map(|i| MinerProfile::new(i, config.hash_rates.get(i).copied().unwrap_or(0)))
            .collect();
        let mut stakes = config.initial_stakes.clone();
        stakes.resize(m, 0);
        let genesis = Block::assemble(
            0,
            Hash256::ZERO,
            0,
            U256::MAX,
            config.genesis_salt,
            miners[0].address,
            vec![],
        );
        Self {
            engine: config.engine,
            strategy,
            block_reward: config.block_reward,
            wins: vec![0; m],
            stakes,
            miners,
            settled: vec![genesis],
            private: Vec::new(),
            public_fork: Vec::new(),
            published: false,
            orphaned: 0,
            clock: 0,
        }
    }

    /// The fork state as a [`Strategy`] sees it.
    #[must_use]
    pub fn fork_state(&self) -> ForkState {
        ForkState {
            private: self.private.len() as u64,
            public: self.public_fork.len() as u64,
            published: self.published,
        }
    }

    fn tie_race(&self) -> bool {
        self.published && !self.private.is_empty() && self.private.len() == self.public_fork.len()
    }

    fn settled_tip(&self) -> Hash256 {
        self.settled.last().expect("genesis always present").hash()
    }

    fn private_tip(&self) -> Hash256 {
        self.private
            .last()
            .map_or_else(|| self.settled_tip(), Block::hash)
    }

    fn public_tip(&self) -> Hash256 {
        self.public_fork
            .last()
            .map_or_else(|| self.settled_tip(), Block::hash)
    }

    fn target(&self) -> U256 {
        match &self.engine {
            Engine::Pow(e) => e.target(),
            _ => U256::MAX,
        }
    }

    fn settle(&mut self, block: Block) {
        let proposer = block.header.proposer;
        let idx = self
            .miners
            .iter()
            .position(|m| m.address == proposer)
            .expect("settled block from a known miner");
        self.wins[idx] += 1;
        self.stakes[idx] += self.block_reward;
        self.settled.push(block);
    }

    fn publish_private(&mut self) {
        self.orphaned += self.public_fork.len() as u64;
        self.public_fork.clear();
        for block in std::mem::take(&mut self.private) {
            self.settle(block);
        }
        self.published = false;
    }

    fn adopt_public(&mut self) {
        self.orphaned += self.private.len() as u64;
        self.private.clear();
        for block in std::mem::take(&mut self.public_fork) {
            self.settle(block);
        }
        self.published = false;
    }

    // The transition rules below deliberately mirror
    // `fairness_core::adversary::ForkMachine` on a different substrate
    // (real blocks settling into counters, vs owner indices): the shared
    // closed-form tests pin both to the same laws, so a rule change on one
    // side without the other fails loudly rather than drifting silently.
    fn apply(&mut self, action: ForkAction) {
        match action {
            ForkAction::ExtendPrivate => {}
            ForkAction::Adopt => self.adopt_public(),
            ForkAction::Publish => {
                if self.private.len() > self.public_fork.len() {
                    self.publish_private();
                } else if self.private.len() == self.public_fork.len() && !self.private.is_empty() {
                    self.published = true;
                } else if self.private.len() < self.public_fork.len() {
                    self.adopt_public();
                }
            }
        }
    }

    /// Assembles the attacker's block, grinding candidate nonces on SL-PoS
    /// when her strategy asks for it: the first candidate under which she
    /// wins the *next* lottery is kept (evaluated at post-settlement
    /// stakes), falling back to the last candidate.
    fn assemble_attacker_block(&self, height: u64, prev: Hash256, base_nonce: u64) -> Block {
        let assemble = |nonce: u64| {
            let coinbase = Transaction::coinbase(self.miners[0].address, self.block_reward, height);
            Block::assemble(
                height,
                prev,
                self.clock,
                self.target(),
                nonce,
                self.miners[0].address,
                vec![coinbase],
            )
        };
        let tries = self.strategy.grinding_tries();
        if tries <= 1 || !matches!(self.engine, Engine::SlPos(_)) {
            return assemble(base_nonce);
        }
        let mut next_stakes = self.stakes.clone();
        next_stakes[0] += self.block_reward;
        let mut candidate = assemble(0);
        for nonce in 1..u64::from(tries) {
            let next = self.engine.run_on_tips(
                &vec![candidate.hash(); self.miners.len()],
                &self.miners,
                &next_stakes,
                &mut NoRng,
            );
            if next.winner == 0 {
                break;
            }
            candidate = assemble(nonce);
        }
        candidate
    }

    /// Runs one network-wide block race and applies the strategy's
    /// response. Returns the index of the miner who found the block.
    pub fn step_block(&mut self, rng: &mut dyn RngCore) -> usize {
        let m = self.miners.len();
        let tie = self.tie_race();
        let gamma = self.strategy.gamma();
        // Per-miner tips: the attacker mines her own branch, honest miners
        // the public tip — except during a tie race, where each honest
        // miner works on the attacker's tip with probability γ.
        let mut tips = vec![self.public_tip(); m];
        let mut on_private = vec![false; m];
        tips[0] = self.private_tip();
        on_private[0] = true;
        if tie && gamma > 0.0 {
            let attacker_tip = tips[0];
            for i in 1..m {
                let u = rng.next_u64() as f64 / (u64::MAX as f64);
                if u < gamma {
                    tips[i] = attacker_tip;
                    on_private[i] = true;
                }
            }
        }

        let outcome = self
            .engine
            .run_on_tips(&tips, &self.miners, &self.stakes, rng);
        self.clock += outcome.elapsed_ticks;
        let w = outcome.winner;

        if w == 0 {
            let height = (self.settled.len() + self.private.len()) as u64;
            let block = self.assemble_attacker_block(height, tips[0], outcome.nonce);
            self.private.push(block);
            self.apply(
                self.strategy
                    .decide(self.fork_state(), ForkEvent::SelfBlock),
            );
        } else {
            let height = if tie && on_private[w] {
                (self.settled.len() + self.private.len()) as u64
            } else {
                (self.settled.len() + self.public_fork.len()) as u64
            };
            let coinbase = Transaction::coinbase(self.miners[w].address, self.block_reward, height);
            let block = Block::assemble(
                height,
                tips[w],
                self.clock,
                self.target(),
                outcome.nonce,
                self.miners[w].address,
                vec![coinbase],
            );
            if tie && on_private[w] {
                // Honest power extended the attacker's published branch:
                // her blocks settle underneath, the public side orphans.
                self.orphaned += self.public_fork.len() as u64;
                self.public_fork.clear();
                for b in std::mem::take(&mut self.private) {
                    self.settle(b);
                }
                self.settle(block);
                self.published = false;
            } else {
                self.public_fork.push(block);
                self.apply(
                    self.strategy
                        .decide(self.fork_state(), ForkEvent::PublicBlock),
                );
            }
        }
        w
    }

    /// Runs `n` block races.
    pub fn run_blocks(&mut self, n: u64, rng: &mut dyn RngCore) {
        for _ in 0..n {
            self.step_block(rng);
        }
    }

    /// Ends the game: the strictly longer branch settles, an unresolved
    /// equal-length race orphans both sides.
    pub fn finalize(&mut self) {
        if self.private.len() > self.public_fork.len() {
            self.publish_private();
        } else if self.public_fork.len() > self.private.len() {
            self.adopt_public();
        } else {
            self.orphaned += (self.private.len() + self.public_fork.len()) as u64;
            self.private.clear();
            self.public_fork.clear();
            self.published = false;
        }
    }

    /// Settled main-chain height (excluding genesis).
    #[must_use]
    pub fn settled_height(&self) -> u64 {
        (self.settled.len() - 1) as u64
    }

    /// Settled blocks won by miner `i`.
    #[must_use]
    pub fn wins(&self, i: usize) -> u64 {
        self.wins[i]
    }

    /// Miner `i`'s fraction of the settled main chain.
    #[must_use]
    pub fn win_fraction(&self, i: usize) -> f64 {
        let n = self.settled_height();
        if n == 0 {
            0.0
        } else {
            self.wins[i] as f64 / n as f64
        }
    }

    /// The attacker's share of the settled chain — Eyal–Sirer relative
    /// revenue (orphans excluded from both sides).
    #[must_use]
    pub fn relative_revenue(&self) -> f64 {
        self.win_fraction(0)
    }

    /// Blocks orphaned by fork resolution so far.
    #[must_use]
    pub fn orphaned(&self) -> u64 {
        self.orphaned
    }

    /// Settled staking power of miner `i` (initial + settled rewards).
    #[must_use]
    pub fn stake(&self, i: usize) -> u64 {
        self.stakes[i]
    }

    /// The settled main chain, genesis first.
    #[must_use]
    pub fn settled_chain(&self) -> &[Block] {
        &self.settled
    }

    /// The simulated clock, in ticks.
    #[must_use]
    pub fn clock(&self) -> u64 {
        self.clock
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consensus::{PowEngine, SlPosEngine};
    use crate::difficulty::target_for_expected_interval;
    use fairness_core::adversary::{Honest, SelfishMining, StakeGrinding};
    use fairness_core::theory::slpos::win_probability_two_miner;
    use fairness_stats::dist::{selfish_mining_relative_revenue, stake_grinding_win_probability};
    use fairness_stats::rng::Xoshiro256StarStar;

    fn pow_config(rates: Vec<u64>, interval: u64) -> ForkNetConfig {
        let total: u64 = rates.iter().sum();
        ForkNetConfig {
            engine: Engine::Pow(PowEngine::new(target_for_expected_interval(
                total, interval,
            ))),
            initial_stakes: vec![0; rates.len()],
            hash_rates: rates,
            block_reward: 100,
            genesis_salt: 0,
        }
    }

    fn slpos_config(stakes: Vec<u64>, reward: u64) -> ForkNetConfig {
        ForkNetConfig {
            engine: Engine::SlPos(SlPosEngine::new(1_000_000)),
            hash_rates: vec![0; stakes.len()],
            initial_stakes: stakes,
            block_reward: reward,
            genesis_salt: 0,
        }
    }

    #[test]
    fn honest_pow_revenue_matches_hash_share() {
        let mut rng = Xoshiro256StarStar::new(1);
        let mut sim = ForkNetSim::new(pow_config(vec![2, 8], 8), Honest);
        sim.run_blocks(2500, &mut rng);
        sim.finalize();
        assert_eq!(sim.orphaned(), 0, "honest mining never orphans");
        assert_eq!(sim.settled_height(), 2500);
        let r = sim.relative_revenue();
        // SE ≈ sqrt(0.2·0.8/2500) ≈ 0.008; allow ~4.5σ.
        assert!((r - 0.2).abs() < 0.036, "revenue {r}");
    }

    #[test]
    fn selfish_pow_beats_fair_share_above_threshold() {
        // α = 0.4, γ = 0: closed form ≈ 0.484. The hash-level race is not
        // the exact Bernoulli event model (same-tick collisions exist), so
        // the tolerance is loose — the rigorous CI-level validation runs
        // against the model driver in fairness-core.
        let mut rng = Xoshiro256StarStar::new(2);
        let mut sim = ForkNetSim::new(pow_config(vec![4, 6], 8), SelfishMining::new(0.0));
        sim.run_blocks(4000, &mut rng);
        sim.finalize();
        let r = sim.relative_revenue();
        let exact = selfish_mining_relative_revenue(0.4, 0.0);
        assert!((r - exact).abs() < 0.05, "revenue {r} vs closed {exact}");
        assert!(
            r > 0.42,
            "selfish mining at α=0.4 must beat fair share: {r}"
        );
        assert!(sim.orphaned() > 0, "withholding must orphan honest work");
    }

    #[test]
    fn selfish_pow_gamma_one_profitable_below_one_third() {
        // γ = 1 drops the threshold to 0: even α = 0.3 profits.
        let mut rng = Xoshiro256StarStar::new(3);
        let mut sim = ForkNetSim::new(pow_config(vec![3, 7], 8), SelfishMining::new(1.0));
        sim.run_blocks(4000, &mut rng);
        sim.finalize();
        let r = sim.relative_revenue();
        let exact = selfish_mining_relative_revenue(0.3, 1.0);
        assert!(r > 0.3, "γ=1 selfish mining at α=0.3 must profit: {r}");
        assert!((r - exact).abs() < 0.05, "revenue {r} vs closed {exact}");
    }

    #[test]
    fn grinding_one_try_is_bit_identical_to_honest() {
        let run = |strategy_blocks: &mut dyn FnMut(&mut Xoshiro256StarStar) -> Vec<Hash256>| {
            let mut rng = Xoshiro256StarStar::new(4);
            strategy_blocks(&mut rng)
        };
        let honest = run(&mut |rng| {
            let mut sim = ForkNetSim::new(slpos_config(vec![200_000, 800_000], 1_000), Honest);
            sim.run_blocks(300, rng);
            sim.settled_chain().iter().map(Block::hash).collect()
        });
        let ground = run(&mut |rng| {
            let mut sim = ForkNetSim::new(
                slpos_config(vec![200_000, 800_000], 1_000),
                StakeGrinding::new(1),
            );
            sim.run_blocks(300, rng);
            sim.settled_chain().iter().map(Block::hash).collect()
        });
        assert_eq!(honest, ground, "tries=1 must be bit-identical to honest");
    }

    #[test]
    fn grinding_rate_matches_closed_form_at_frozen_stakes() {
        // Zero reward freezes stakes, isolating the grinding Markov chain.
        let a = 0.2;
        let p = win_probability_two_miner(a);
        for tries in [2u32, 8] {
            let mut rng = Xoshiro256StarStar::new(5 + u64::from(tries));
            let mut sim = ForkNetSim::new(
                slpos_config(vec![200_000, 800_000], 0),
                StakeGrinding::new(tries),
            );
            sim.run_blocks(20_000, &mut rng);
            let r = sim.win_fraction(0);
            let exact = stake_grinding_win_probability(p, tries);
            // SE ≈ sqrt(0.18·0.82/20000) ≈ 0.0027; allow ~4.5σ.
            assert!(
                (r - exact).abs() < 0.013,
                "tries={tries}: rate {r} vs closed {exact}"
            );
        }
    }

    #[test]
    fn grinding_accelerates_rich_get_richer_on_slpos() {
        // With compounding rewards the whale's grinding advantage feeds
        // back into stake: the attacker (80%) monopolizes faster.
        let run = |tries: u32| {
            let mut rng = Xoshiro256StarStar::new(6);
            let mut sim = ForkNetSim::new(
                slpos_config(vec![800_000, 200_000], 20_000),
                StakeGrinding::new(tries),
            );
            sim.run_blocks(600, &mut rng);
            sim.win_fraction(0)
        };
        let honest = run(1);
        let ground = run(8);
        assert!(
            ground >= honest,
            "grinding should not lose blocks: {ground} vs {honest}"
        );
    }

    #[test]
    fn settled_chain_links_and_heights_are_consistent() {
        let mut rng = Xoshiro256StarStar::new(7);
        let mut sim = ForkNetSim::new(pow_config(vec![4, 6], 6), SelfishMining::new(0.5));
        sim.run_blocks(500, &mut rng);
        sim.finalize();
        let chain = sim.settled_chain();
        for (i, pair) in chain.windows(2).enumerate() {
            assert_eq!(pair[1].header.prev_hash, pair[0].hash(), "link at {i}");
            assert_eq!(pair[1].header.height, pair[0].header.height + 1);
        }
        // Wins account for every settled block.
        let total: u64 = (0..2).map(|i| sim.wins(i)).sum();
        assert_eq!(total, sim.settled_height());
    }

    #[test]
    #[should_panic(expected = "PoW and SL-PoS")]
    fn tip_racing_rejects_mlpos() {
        use crate::consensus::MlPosEngine;
        let config = ForkNetConfig {
            engine: Engine::MlPos(MlPosEngine::for_expected_interval(1_000_000, 20)),
            initial_stakes: vec![200_000, 800_000],
            hash_rates: vec![],
            block_reward: 100,
            genesis_salt: 0,
        };
        let mut rng = Xoshiro256StarStar::new(8);
        let mut sim = ForkNetSim::new(config, Honest);
        sim.step_block(&mut rng);
    }

    #[test]
    fn zero_height_and_zero_rate_fractions_are_finite() {
        // Degenerate regression: a sim that has settled nothing (and one
        // whose attacker has zero hash rate) must report exactly 0.0, not
        // NaN, so downstream CSVs stay well-formed.
        let fresh = ForkNetSim::new(pow_config(vec![4, 6], 6), SelfishMining::new(0.5));
        assert_eq!(fresh.settled_height(), 0);
        assert_eq!(fresh.win_fraction(0), 0.0);
        assert_eq!(fresh.relative_revenue(), 0.0);

        let mut rng = Xoshiro256StarStar::new(9);
        let mut sim = ForkNetSim::new(pow_config(vec![0, 10], 6), SelfishMining::new(0.5));
        sim.run_blocks(200, &mut rng);
        sim.finalize();
        let r = sim.relative_revenue();
        assert!(r.is_finite());
        assert_eq!(r, 0.0, "powerless attacker can settle nothing");
    }
}
