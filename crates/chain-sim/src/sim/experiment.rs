//! "Real-system" experiment runner.
//!
//! Drives [`NetworkSim`]/[`CPosSim`] repetitions exactly the way the paper
//! drives its EC2 deployments: run a two-miner (or N-miner) network for `n`
//! blocks, record the reward fraction `λ_A` at checkpoints, repeat, and
//! summarize. The fairness figures overlay these hash-level trajectories on
//! the fast closed-form simulations from `fairness-core` (the paper's green
//! bars vs blue bands).

use super::network::{CPosSim, Engine, NetworkConfig, NetworkSim};
use crate::consensus::{CPosEngine, FslPosEngine, MlPosEngine, PowEngine, SlPosEngine};
use crate::difficulty::target_for_expected_interval;
use rand::RngCore;

/// Which protocol an experiment exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtocolKind {
    /// Proof-of-Work (Geth stand-in).
    Pow,
    /// Multi-lottery PoS (Qtum/Blackcoin stand-in).
    MlPos,
    /// Single-lottery PoS (NXT stand-in).
    SlPos,
    /// Fair single-lottery PoS (paper's treatment on NXT).
    FslPos,
    /// Compound PoS (Ethereum 2.0 spec).
    CPos,
}

impl ProtocolKind {
    /// Display name matching the paper's terminology.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            ProtocolKind::Pow => "PoW",
            ProtocolKind::MlPos => "ML-PoS",
            ProtocolKind::SlPos => "SL-PoS",
            ProtocolKind::FslPos => "FSL-PoS",
            ProtocolKind::CPos => "C-PoS",
        }
    }
}

/// Configuration of a hash-level experiment.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Protocol under test.
    pub protocol: ProtocolKind,
    /// Initial stake atoms per miner (index 0 is the tracked miner A).
    pub initial_stakes: Vec<u64>,
    /// Hash rates (PoW); proportional to the paper's resource shares.
    pub hash_rates: Vec<u64>,
    /// Block reward in atoms (C-PoS: proposer reward per epoch).
    pub block_reward: u64,
    /// C-PoS attester/inflation reward per epoch, in atoms.
    pub attester_reward: u64,
    /// C-PoS shard count `P`.
    pub shards: u32,
    /// Horizon: number of blocks (epochs for C-PoS).
    pub horizon: u64,
    /// Checkpoints (block/epoch counts) at which `λ_A` is recorded; must be
    /// ascending and ≤ `horizon`.
    pub checkpoints: Vec<u64>,
}

impl ExperimentConfig {
    /// Two-miner configuration matching the paper's default setup: miner A
    /// holds fraction `a` of `total` stake atoms, reward per block is
    /// `w_fraction` of the initial circulation.
    #[must_use]
    pub fn two_miner(protocol: ProtocolKind, a: f64, w_fraction: f64, horizon: u64) -> Self {
        assert!((0.0..1.0).contains(&a) && a > 0.0, "a must be in (0,1)");
        let total: u64 = 1_000_000;
        let stake_a = (a * total as f64).round() as u64;
        let stakes = vec![stake_a, total - stake_a];
        let reward = (w_fraction * total as f64).round() as u64;
        // Hash rates only matter proportionally; small integers keep the
        // nonce-grinding loop affordable (the paper's a values are all
        // multiples of 0.05, so a scale of 20 represents them exactly).
        let rate_a = ((a * 20.0).round() as u64).max(1);
        let rates = vec![rate_a, 20 - rate_a.min(19)];
        Self {
            protocol,
            initial_stakes: stakes,
            hash_rates: rates,
            block_reward: reward.max(1),
            attester_reward: (10.0 * w_fraction * total as f64).round() as u64,
            shards: 32,
            horizon,
            checkpoints: default_checkpoints(horizon),
        }
    }

    /// N-miner configuration (Table 1's multi-miner game at the hash
    /// level): miner `i` holds fraction `shares[i]` of the stake and of the
    /// hash power, index 0 being the tracked miner A. Stake atoms sum
    /// exactly to the same 1,000,000-atom circulation as
    /// [`two_miner`](Self::two_miner); the reward per block is `w_fraction`
    /// of it.
    ///
    /// # Panics
    /// Panics unless `shares` has at least two entries, every share is in
    /// `(0, 1)`, and the shares sum to 1 (within 1e-9).
    #[must_use]
    pub fn multi_miner(
        protocol: ProtocolKind,
        shares: &[f64],
        w_fraction: f64,
        horizon: u64,
    ) -> Self {
        assert!(shares.len() >= 2, "need at least two miners");
        assert!(
            shares.iter().all(|&s| s > 0.0 && s < 1.0),
            "each share must be in (0,1), got {shares:?}"
        );
        let sum: f64 = shares.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "shares must sum to 1, got {sum}");
        let total: u64 = 1_000_000;
        // Round every stake but give the last miner the exact remainder so
        // the circulation is conserved atom-for-atom.
        let mut stakes: Vec<u64> = shares[..shares.len() - 1]
            .iter()
            .map(|&s| ((s * total as f64).round() as u64).max(1))
            .collect();
        let assigned: u64 = stakes.iter().sum();
        assert!(assigned < total, "shares leave no stake for the last miner");
        stakes.push(total - assigned);
        // Hash rates at scale 100 represent percent-resolution shares
        // exactly while keeping the nonce-grinding loop affordable.
        let rates: Vec<u64> = shares
            .iter()
            .map(|&s| ((s * 100.0).round() as u64).max(1))
            .collect();
        let reward = (w_fraction * total as f64).round() as u64;
        Self {
            protocol,
            initial_stakes: stakes,
            hash_rates: rates,
            block_reward: reward.max(1),
            attester_reward: (10.0 * w_fraction * total as f64).round() as u64,
            shards: 32,
            horizon,
            checkpoints: default_checkpoints(horizon),
        }
    }
}

/// Ten roughly log-spaced checkpoints up to `horizon`.
#[must_use]
pub fn default_checkpoints(horizon: u64) -> Vec<u64> {
    let mut pts: Vec<u64> = Vec::new();
    let mut v = (horizon / 100).max(1);
    while v < horizon {
        pts.push(v);
        v = (v * 2).max(v + 1);
    }
    pts.push(horizon);
    pts.dedup();
    pts
}

/// Result of one experiment repetition.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentOutcome {
    /// `λ_A` at each configured checkpoint.
    pub lambda_series: Vec<f64>,
    /// Final `λ_A` at the horizon.
    pub final_lambda: f64,
    /// Final stake atoms per miner.
    pub final_stakes: Vec<u64>,
    /// Total simulated ticks elapsed.
    pub total_ticks: u64,
}

/// Runs one repetition of the experiment.
///
/// # Panics
/// Panics if checkpoints are not ascending or exceed the horizon.
#[must_use]
pub fn run_experiment(config: &ExperimentConfig, rng: &mut dyn RngCore) -> ExperimentOutcome {
    assert!(
        config.checkpoints.windows(2).all(|w| w[0] < w[1]),
        "checkpoints must be strictly ascending"
    );
    assert!(
        config
            .checkpoints
            .last()
            .is_none_or(|&last| last <= config.horizon),
        "checkpoints must not exceed the horizon"
    );
    match config.protocol {
        ProtocolKind::CPos => run_cpos(config, rng),
        _ => run_block_lottery(config, rng),
    }
}

fn build_engine(config: &ExperimentConfig) -> Engine {
    let total: u64 = config.initial_stakes.iter().sum();
    match config.protocol {
        ProtocolKind::Pow => {
            let rate: u64 = config.hash_rates.iter().sum();
            // ~4 expected ticks per block keeps hash-level runs affordable.
            Engine::Pow(PowEngine::new(target_for_expected_interval(rate.max(1), 4)))
        }
        // 64-tick intervals keep per-timestamp success probabilities small
        // enough that the tie-break term p_A·p_B is negligible (§2.2).
        ProtocolKind::MlPos => Engine::MlPos(MlPosEngine::for_expected_interval(total, 64)),
        ProtocolKind::SlPos => Engine::SlPos(SlPosEngine::new(1_000)),
        ProtocolKind::FslPos => Engine::FslPos(FslPosEngine::new(1_000.0)),
        ProtocolKind::CPos => unreachable!("C-PoS handled by run_cpos"),
    }
}

fn run_block_lottery(config: &ExperimentConfig, rng: &mut dyn RngCore) -> ExperimentOutcome {
    let net_config = NetworkConfig {
        engine: build_engine(config),
        initial_stakes: config.initial_stakes.clone(),
        hash_rates: config.hash_rates.clone(),
        block_reward: config.block_reward,
        txs_per_block: 2,
        propagation_delay: 1,
        pow_retarget: None,
    };
    let mut net = NetworkSim::new(net_config, rng);
    let mut series = Vec::with_capacity(config.checkpoints.len());
    let mut next_checkpoint = 0usize;
    for height in 1..=config.horizon {
        net.step_block(rng);
        if next_checkpoint < config.checkpoints.len()
            && height == config.checkpoints[next_checkpoint]
        {
            series.push(net.win_fraction(0));
            next_checkpoint += 1;
        }
    }
    let m = config.initial_stakes.len().max(config.hash_rates.len());
    ExperimentOutcome {
        final_lambda: net.win_fraction(0),
        lambda_series: series,
        final_stakes: (0..m).map(|i| net.stake(i)).collect(),
        total_ticks: net.clock(),
    }
}

fn run_cpos(config: &ExperimentConfig, rng: &mut dyn RngCore) -> ExperimentOutcome {
    let engine = CPosEngine::new(config.shards, config.block_reward, config.attester_reward);
    let mut sim = CPosSim::new(engine, &config.initial_stakes, 384);
    let mut series = Vec::with_capacity(config.checkpoints.len());
    let mut next_checkpoint = 0usize;
    for epoch in 1..=config.horizon {
        sim.step_epoch(rng);
        if next_checkpoint < config.checkpoints.len()
            && epoch == config.checkpoints[next_checkpoint]
        {
            series.push(sim.reward_fraction(0));
            next_checkpoint += 1;
        }
    }
    ExperimentOutcome {
        final_lambda: sim.reward_fraction(0),
        lambda_series: series,
        final_stakes: (0..config.initial_stakes.len())
            .map(|i| sim.stake(i))
            .collect(),
        total_ticks: sim.epoch() * 384,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairness_stats::rng::Xoshiro256StarStar;

    #[test]
    fn default_checkpoints_shape() {
        let pts = default_checkpoints(1000);
        assert_eq!(*pts.last().expect("non-empty"), 1000);
        assert!(pts.windows(2).all(|w| w[0] < w[1]));
        assert!(pts.len() >= 5);
    }

    #[test]
    fn mlpos_experiment_runs() {
        let config = ExperimentConfig::two_miner(ProtocolKind::MlPos, 0.2, 0.01, 100);
        let mut rng = Xoshiro256StarStar::new(1);
        let out = run_experiment(&config, &mut rng);
        assert_eq!(out.lambda_series.len(), config.checkpoints.len());
        assert!((0.0..=1.0).contains(&out.final_lambda));
        // Stake conservation: initial 1e6 + 100 blocks × 10_000 atoms.
        let total: u64 = out.final_stakes.iter().sum();
        assert_eq!(total, 1_000_000 + 100 * 10_000);
    }

    #[test]
    fn pow_experiment_runs() {
        let config = ExperimentConfig::two_miner(ProtocolKind::Pow, 0.2, 0.01, 60);
        let mut rng = Xoshiro256StarStar::new(2);
        let out = run_experiment(&config, &mut rng);
        assert!((0.0..=1.0).contains(&out.final_lambda));
        assert!(out.total_ticks >= 60);
    }

    #[test]
    fn slpos_experiment_poor_miner_declines() {
        let config = ExperimentConfig::two_miner(ProtocolKind::SlPos, 0.2, 0.01, 500);
        let mut rng = Xoshiro256StarStar::new(3);
        let out = run_experiment(&config, &mut rng);
        // Strong expectation: λ_A well below fair share 0.2 (usually ~0).
        assert!(
            out.final_lambda < 0.2,
            "SL-PoS poor miner fraction {}",
            out.final_lambda
        );
    }

    #[test]
    fn fslpos_experiment_runs() {
        let config = ExperimentConfig::two_miner(ProtocolKind::FslPos, 0.2, 0.01, 200);
        let mut rng = Xoshiro256StarStar::new(4);
        let out = run_experiment(&config, &mut rng);
        assert!((0.0..=1.0).contains(&out.final_lambda));
    }

    #[test]
    fn cpos_experiment_runs() {
        let config = ExperimentConfig::two_miner(ProtocolKind::CPos, 0.2, 0.01, 50);
        let mut rng = Xoshiro256StarStar::new(5);
        let out = run_experiment(&config, &mut rng);
        assert_eq!(out.lambda_series.len(), config.checkpoints.len());
        // C-PoS concentrates fast; final λ should be near 0.2 already.
        assert!(
            (out.final_lambda - 0.2).abs() < 0.08,
            "{}",
            out.final_lambda
        );
    }

    #[test]
    fn multi_miner_conserves_circulation() {
        // Table 1's setup: A holds 0.2, four others split 0.8.
        let shares = vec![0.2, 0.2, 0.2, 0.2, 0.2];
        let config = ExperimentConfig::multi_miner(ProtocolKind::MlPos, &shares, 0.01, 80);
        assert_eq!(config.initial_stakes.len(), 5);
        assert_eq!(config.initial_stakes.iter().sum::<u64>(), 1_000_000);
        assert_eq!(config.hash_rates, vec![20, 20, 20, 20, 20]);
        let mut rng = Xoshiro256StarStar::new(6);
        let out = run_experiment(&config, &mut rng);
        assert_eq!(
            out.final_stakes.iter().sum::<u64>(),
            1_000_000 + 80 * 10_000
        );
    }

    #[test]
    fn multi_miner_matches_two_miner_stakes() {
        let two = ExperimentConfig::two_miner(ProtocolKind::SlPos, 0.2, 0.01, 100);
        let multi = ExperimentConfig::multi_miner(ProtocolKind::SlPos, &[0.2, 0.8], 0.01, 100);
        assert_eq!(two.initial_stakes, multi.initial_stakes);
        assert_eq!(two.block_reward, multi.block_reward);
        assert_eq!(two.checkpoints, multi.checkpoints);
    }

    #[test]
    fn multi_miner_uneven_shares_round_trip() {
        // 10 miners: A 0.2, nine others 0.8/9 each (not an exact binary
        // fraction — the remainder lands on the last miner).
        let mut shares = vec![0.2];
        shares.extend(std::iter::repeat_n(0.8 / 9.0, 9));
        let config = ExperimentConfig::multi_miner(ProtocolKind::Pow, &shares, 0.01, 30);
        assert_eq!(config.initial_stakes.len(), 10);
        assert_eq!(config.initial_stakes.iter().sum::<u64>(), 1_000_000);
        let mut rng = Xoshiro256StarStar::new(7);
        let out = run_experiment(&config, &mut rng);
        assert_eq!(out.final_stakes.len(), 10);
        assert!((0.0..=1.0).contains(&out.final_lambda));
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn multi_miner_rejects_bad_shares() {
        let _ = ExperimentConfig::multi_miner(ProtocolKind::Pow, &[0.2, 0.2], 0.01, 10);
    }

    #[test]
    fn experiments_are_deterministic_per_seed() {
        let config = ExperimentConfig::two_miner(ProtocolKind::MlPos, 0.3, 0.01, 50);
        let a = run_experiment(&config, &mut Xoshiro256StarStar::new(9));
        let b = run_experiment(&config, &mut Xoshiro256StarStar::new(9));
        let c = run_experiment(&config, &mut Xoshiro256StarStar::new(10));
        assert_eq!(a, b);
        assert!(a != c || a.final_stakes == c.final_stakes);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn bad_checkpoints_rejected() {
        let mut config = ExperimentConfig::two_miner(ProtocolKind::MlPos, 0.2, 0.01, 100);
        config.checkpoints = vec![50, 50];
        let mut rng = Xoshiro256StarStar::new(1);
        let _ = run_experiment(&config, &mut rng);
    }
}
