//! Difficulty adjustment rules.
//!
//! Real clients retarget difficulty so block intervals stay near a design
//! constant (15 s for Geth, 5–10 min for Qtum/NXT as cited in the paper).
//! Two industry rules are implemented:
//!
//! * [`bitcoin_retarget`] — epoch-based: every `N` blocks the target is
//!   scaled by `actual/expected` elapsed time, clamped to a 4× band;
//! * [`nxt_adjust_base_target`] — per-block: NXT scales its `baseTarget` by
//!   the last block time, clamped to ±20% per step (SL-PoS chains).

use crate::u256::U256;

/// Bitcoin-style retarget: scales `target` by `actual_timespan /
/// expected_timespan`, clamping the ratio to `[1/4, 4]`. A larger target is
/// easier.
///
/// # Panics
/// Panics if `expected_timespan` is zero.
#[must_use]
pub fn bitcoin_retarget(target: U256, actual_timespan: u64, expected_timespan: u64) -> U256 {
    assert!(expected_timespan > 0, "expected timespan must be positive");
    let clamped = actual_timespan
        .max(expected_timespan / 4)
        .min(expected_timespan.saturating_mul(4));
    // target * clamped / expected without overflow.
    let scaled = target.mul_div(U256::from_u64(clamped), U256::from_u64(expected_timespan));
    if scaled.is_zero() {
        U256::ONE
    } else {
        scaled
    }
}

/// NXT-style per-block base-target adjustment: scales by
/// `last_block_time / target_block_time` with the ratio clamped to
/// `[0.8, 1.2]` per block, and the result kept within
/// `[initial/50, initial*50]`.
///
/// # Panics
/// Panics if `target_block_time` is zero.
#[must_use]
pub fn nxt_adjust_base_target(
    base_target: U256,
    initial_base_target: U256,
    last_block_time: u64,
    target_block_time: u64,
) -> U256 {
    assert!(target_block_time > 0, "target block time must be positive");
    // Clamp the time ratio to ±20%: times in [0.8T, 1.2T].
    let lo = target_block_time * 4 / 5;
    let hi = target_block_time * 6 / 5;
    let clamped_time = last_block_time.clamp(lo.max(1), hi);
    let mut adjusted = base_target.mul_div(
        U256::from_u64(clamped_time),
        U256::from_u64(target_block_time),
    );
    // Keep within a sane global band around the initial value.
    let min_t = initial_base_target
        .div_rem(U256::from_u64(50))
        .0
        .max(U256::ONE);
    let max_t = initial_base_target.saturating_mul(U256::from_u64(50));
    if adjusted < min_t {
        adjusted = min_t;
    }
    if adjusted > max_t {
        adjusted = max_t;
    }
    adjusted
}

/// Derives a PoW target such that with total hash rate `total_hash_rate`
/// (trials per tick) the expected block interval is `ticks_per_block`:
/// success probability per trial `p = 1/(rate·interval)` ⇒
/// `target = 2²⁵⁶ · p`.
///
/// # Panics
/// Panics if either argument is zero.
#[must_use]
pub fn target_for_expected_interval(total_hash_rate: u64, ticks_per_block: u64) -> U256 {
    assert!(total_hash_rate > 0, "hash rate must be positive");
    assert!(ticks_per_block > 0, "interval must be positive");
    let denom = U256::from_u64(total_hash_rate) * U256::from_u64(ticks_per_block);
    U256::MAX.div_rem(denom).0.max(U256::ONE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retarget_no_change_when_on_schedule() {
        let t = U256::ONE << 200u32;
        assert_eq!(bitcoin_retarget(t, 1000, 1000), t);
    }

    #[test]
    fn retarget_eases_when_blocks_slow() {
        let t = U256::ONE << 200u32;
        let new = bitcoin_retarget(t, 2000, 1000);
        assert_eq!(new, t * U256::from_u64(2)); // easier target
    }

    #[test]
    fn retarget_tightens_when_blocks_fast() {
        let t = U256::ONE << 200u32;
        let new = bitcoin_retarget(t, 500, 1000);
        assert_eq!(new, t.div_rem(U256::from_u64(2)).0);
    }

    #[test]
    fn retarget_clamped_to_4x_band() {
        let t = U256::ONE << 200u32;
        assert_eq!(bitcoin_retarget(t, 100_000, 1000), t * U256::from_u64(4));
        assert_eq!(bitcoin_retarget(t, 1, 1000), t.div_rem(U256::from_u64(4)).0);
    }

    #[test]
    fn retarget_never_zero() {
        assert_eq!(bitcoin_retarget(U256::ONE, 1, 1000), U256::ONE);
    }

    #[test]
    fn nxt_adjustment_direction() {
        let init = U256::ONE << 150u32;
        // Slow block (time > target): base target grows (easier).
        let up = nxt_adjust_base_target(init, init, 120, 100);
        assert!(up > init);
        // Fast block: shrinks.
        let down = nxt_adjust_base_target(init, init, 80, 100);
        assert!(down < init);
    }

    #[test]
    fn nxt_adjustment_clamped_per_block() {
        let init = U256::ONE << 150u32;
        let extreme_slow = nxt_adjust_base_target(init, init, 10_000, 100);
        // At most +20%.
        assert_eq!(
            extreme_slow,
            init.mul_div(U256::from_u64(120), U256::from_u64(100))
        );
        let extreme_fast = nxt_adjust_base_target(init, init, 1, 100);
        assert_eq!(
            extreme_fast,
            init.mul_div(U256::from_u64(80), U256::from_u64(100))
        );
    }

    #[test]
    fn nxt_global_band() {
        let init = U256::from_u64(1000);
        // Walk the target down repeatedly; it must not fall below init/50.
        let mut t = init;
        for _ in 0..100 {
            t = nxt_adjust_base_target(t, init, 1, 100);
        }
        assert_eq!(t, U256::from_u64(20)); // 1000/50
    }

    #[test]
    fn expected_interval_target_math() {
        // With rate 100 trials/tick and 50 ticks/block, p = 1/5000 per trial.
        let target = target_for_expected_interval(100, 50);
        let p = target.as_unit_f64();
        assert!((p - 1.0 / 5000.0).abs() / (1.0 / 5000.0) < 1e-9, "p={p}");
    }
}
