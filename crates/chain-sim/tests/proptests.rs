//! Property-based tests for the blockchain substrate.

use chain_sim::{
    nxt_adjust_base_target, proportional_split, sha256, Hash256, HashBuilder, Ledger, MerkleTree,
    MinerProfile, SlPosEngine, Transaction, U256,
};
use proptest::prelude::*;

proptest! {
    // ---------------- SHA-256 ----------------

    #[test]
    fn sha256_is_deterministic_and_sensitive(data in prop::collection::vec(any::<u8>(), 0..512)) {
        let d1 = sha256(&data);
        let d2 = sha256(&data);
        prop_assert_eq!(d1, d2);
        // Flipping any single bit changes the digest.
        if !data.is_empty() {
            let mut tampered = data.clone();
            tampered[0] ^= 1;
            prop_assert_ne!(sha256(&tampered), d1);
        }
    }

    #[test]
    fn sha256_incremental_chunking_invariant(
        data in prop::collection::vec(any::<u8>(), 0..600),
        split in any::<usize>(),
    ) {
        let mut h = chain_sim::Sha256::new();
        let cut = if data.is_empty() { 0 } else { split % data.len() };
        h.update(&data[..cut]);
        h.update(&data[cut..]);
        prop_assert_eq!(h.finalize(), sha256(&data));
    }

    // ---------------- U256 ----------------

    #[test]
    fn u256_add_commutes_and_associates(a in any::<u128>(), b in any::<u128>(), c in any::<u128>()) {
        let (x, y, z) = (U256::from_u128(a), U256::from_u128(b), U256::from_u128(c));
        prop_assert_eq!(x.wrapping_add(y), y.wrapping_add(x));
        prop_assert_eq!(x.wrapping_add(y).wrapping_add(z), x.wrapping_add(y.wrapping_add(z)));
    }

    #[test]
    fn u256_mul_distributes(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let (x, y, z) = (U256::from_u64(a), U256::from_u64(b), U256::from_u64(c));
        // (x + y) * z == x*z + y*z (all fit in 256 bits from 64-bit inputs).
        let lhs = (x.wrapping_add(y)).wrapping_mul(z);
        let rhs = x.wrapping_mul(z).wrapping_add(y.wrapping_mul(z));
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn u256_ordering_consistent_with_u128(a in any::<u128>(), b in any::<u128>()) {
        prop_assert_eq!(U256::from_u128(a).cmp(&U256::from_u128(b)), a.cmp(&b));
    }

    #[test]
    fn u256_display_matches_u128(v in any::<u128>()) {
        prop_assert_eq!(U256::from_u128(v).to_string(), v.to_string());
    }

    // ---------------- ledger ----------------

    #[test]
    fn ledger_transfers_conserve_supply(
        balances in prop::collection::vec(1u64..1_000_000, 2..6),
        moves in prop::collection::vec((0usize..6, 0usize..6, 1u64..5_000), 0..30),
    ) {
        let alloc: Vec<_> = balances
            .iter()
            .enumerate()
            .map(|(i, &b)| (chain_sim::Address::for_miner(i), b))
            .collect();
        let mut ledger = Ledger::with_genesis(&alloc);
        let supply = ledger.total_supply();
        for (from, to, amount) in moves {
            let from_addr = chain_sim::Address::for_miner(from % balances.len());
            let to_addr = chain_sim::Address::for_miner(to % balances.len());
            let nonce = ledger.nonce(&from_addr);
            // Transfers may fail (insufficient funds, self-transfer ok);
            // either way supply must not change.
            let _ = ledger.transfer(from_addr, to_addr, amount, nonce);
            prop_assert_eq!(ledger.total_supply(), supply);
            prop_assert!(ledger.check_supply_invariant());
        }
    }

    #[test]
    fn split_then_credit_preserves_atoms(
        total in 0u64..10_000_000,
        weights in prop::collection::vec(1u64..1_000, 1..10),
    ) {
        let shares = proportional_split(total, &weights);
        let mut ledger = Ledger::new();
        for (i, &s) in shares.iter().enumerate() {
            ledger.credit(chain_sim::Address::for_miner(i), s).unwrap();
        }
        prop_assert_eq!(ledger.total_supply(), total);
    }

    // ---------------- merkle ----------------

    #[test]
    fn merkle_root_deterministic_and_order_sensitive(n in 2usize..24, swap in 0usize..24) {
        let leaves: Vec<Hash256> = (0..n as u64)
            .map(|i| HashBuilder::new("mp").u64(i).finish())
            .collect();
        let root = MerkleTree::build(&leaves).root();
        prop_assert_eq!(MerkleTree::build(&leaves).root(), root);
        let i = swap % n;
        let j = (swap + 1) % n;
        if i != j {
            let mut swapped = leaves.clone();
            swapped.swap(i, j);
            prop_assert_ne!(MerkleTree::build(&swapped).root(), root);
        }
    }

    // ---------------- transactions ----------------

    #[test]
    fn transaction_ids_injective_on_fields(
        amount in 1u64..1_000_000,
        fee in 0u64..1_000,
        nonce in 0u64..1_000,
    ) {
        let a = chain_sim::Address::for_miner(0);
        let b = chain_sim::Address::for_miner(1);
        let tx = Transaction::transfer(a, b, amount, fee, nonce);
        prop_assert!(tx.verify_auth());
        let other = Transaction::transfer(a, b, amount + 1, fee, nonce);
        prop_assert_ne!(tx.id(), other.id());
    }

    // ---------------- wire codec ----------------

    #[test]
    fn block_codec_roundtrip(
        height in any::<u64>(),
        timestamp in any::<u64>(),
        nonce in any::<u64>(),
        txs in prop::collection::vec((0u64..1_000_000, 0u64..1_000, 0u64..1_000), 0..12),
    ) {
        let proposer = chain_sim::Address::for_miner(0);
        let mut body = vec![Transaction::coinbase(proposer, 50, height)];
        for (amount, fee, nonce) in txs {
            body.push(Transaction::transfer(
                chain_sim::Address::for_miner(1),
                chain_sim::Address::for_miner(2),
                amount + 1,
                fee,
                nonce,
            ));
        }
        let block = chain_sim::Block::assemble(
            height,
            HashBuilder::new("parent").u64(height).finish(),
            timestamp,
            U256::from_u128(nonce as u128) << 64u32,
            nonce,
            proposer,
            body,
        );
        let decoded = chain_sim::decode_block(chain_sim::encode_block(&block))
            .expect("roundtrip decode");
        prop_assert_eq!(&decoded, &block);
        prop_assert_eq!(decoded.hash(), block.hash());
        prop_assert!(decoded.merkle_root_valid());
    }

    // ---------------- difficulty ----------------

    #[test]
    fn nxt_retarget_stays_in_band(
        time in 1u64..10_000,
        steps in 1usize..60,
    ) {
        let init = U256::ONE << 150u32;
        let mut t = init;
        for _ in 0..steps {
            t = nxt_adjust_base_target(t, init, time, 100);
        }
        let min_t = init.div_rem(U256::from_u64(50)).0;
        let max_t = init.saturating_mul(U256::from_u64(50));
        prop_assert!(t >= min_t && t <= max_t);
    }

    // ---------------- SL-PoS determinism ----------------

    #[test]
    fn slpos_lottery_is_pure_function_of_chain_state(
        stakes in prop::collection::vec(1u64..1_000_000, 2..6),
        tag in any::<u64>(),
    ) {
        let miners: Vec<MinerProfile> =
            (0..stakes.len()).map(|i| MinerProfile::new(i, 0)).collect();
        let prev = HashBuilder::new("prev").u64(tag).finish();
        let engine = SlPosEngine::new(1000);
        let mut rng = fairness_stats::rng::Xoshiro256StarStar::new(1);
        let a = chain_sim::BlockLottery::run(&engine, &prev, 1, &miners, &stakes, &mut rng);
        let b = chain_sim::BlockLottery::run(&engine, &prev, 1, &miners, &stakes, &mut rng);
        prop_assert_eq!(a, b);
        prop_assert!(chain_sim::BlockLottery::verify(&engine, &prev, 1, &miners, &stakes, &a));
    }
}
