//! Integration tests: the hash-level chain-sim engines against the
//! closed-form games of fairness-core — the mechanisms of Section 2 must
//! produce the same statistics as the analysis model they justify.

use blockchain_fairness::chain::{
    run_experiment, CPosEngine, CPosSim, ExperimentConfig, ProtocolKind,
};
use blockchain_fairness::prelude::*;
use blockchain_fairness::stats::mc::{run_monte_carlo, McConfig};

/// Runs `reps` hash-level experiments and returns the final λ_A values.
fn system_lambdas(kind: ProtocolKind, a: f64, horizon: u64, reps: usize, seed: u64) -> Vec<f64> {
    let config = ExperimentConfig::two_miner(kind, a, 0.01, horizon);
    run_monte_carlo(McConfig::new(reps, seed), |_i, rng| {
        run_experiment(&config, rng).final_lambda
    })
}

#[test]
fn pow_chain_matches_hash_power_share() {
    let lambdas = system_lambdas(ProtocolKind::Pow, 0.2, 600, 60, 1);
    let mean: f64 = lambdas.iter().sum::<f64>() / lambdas.len() as f64;
    // SE ≈ sqrt(0.2·0.8/600)/√60 ≈ 0.0021.
    assert!((mean - 0.2).abs() < 0.012, "PoW chain mean {mean}");
}

#[test]
fn mlpos_chain_is_expectationally_fair() {
    let lambdas = system_lambdas(ProtocolKind::MlPos, 0.2, 800, 80, 2);
    let mean: f64 = lambdas.iter().sum::<f64>() / lambdas.len() as f64;
    // Per-game λ sd ≈ 0.03 at n=800 (Pólya), SE ≈ 0.004.
    assert!((mean - 0.2).abs() < 0.02, "ML-PoS chain mean {mean}");
}

#[test]
fn slpos_chain_underpays_poor_miner_like_closed_form() {
    // Hash-level SL-PoS and the closed-form game should show the same
    // decay of λ_A.
    let horizon = 800;
    let system = system_lambdas(ProtocolKind::SlPos, 0.2, horizon, 80, 3);
    let sys_mean: f64 = system.iter().sum::<f64>() / system.len() as f64;

    let config = EnsembleConfig {
        checkpoints: vec![horizon],
        ..EnsembleConfig::paper_default(0.2, horizon, 2000, 3)
    };
    let closed = run_ensemble(&SlPos::new(0.01), &config).final_point().mean;

    assert!(
        (sys_mean - closed).abs() < 0.03,
        "system {sys_mean} vs closed-form {closed}"
    );
    assert!(sys_mean < 0.13, "poor miner must be under-paid: {sys_mean}");
}

#[test]
fn fslpos_chain_restores_proportionality() {
    let lambdas = system_lambdas(ProtocolKind::FslPos, 0.2, 800, 80, 4);
    let mean: f64 = lambdas.iter().sum::<f64>() / lambdas.len() as f64;
    assert!((mean - 0.2).abs() < 0.02, "FSL-PoS chain mean {mean}");
}

#[test]
fn cpos_chain_tracks_closed_form_band() {
    let lambdas = system_lambdas(ProtocolKind::CPos, 0.2, 150, 60, 5);
    let mean: f64 = lambdas.iter().sum::<f64>() / lambdas.len() as f64;
    assert!((mean - 0.2).abs() < 0.01, "C-PoS chain mean {mean}");
}

#[test]
fn chain_supply_matches_game_accounting() {
    // The integer ledger and the normalized closed-form game agree on
    // total issuance: 1 + n·w (in atoms: initial + n·reward).
    let config = ExperimentConfig::two_miner(ProtocolKind::MlPos, 0.2, 0.01, 120);
    let mut rng = blockchain_fairness::stats::rng::Xoshiro256StarStar::new(6);
    let out = run_experiment(&config, &mut rng);
    let total: u64 = out.final_stakes.iter().sum();
    assert_eq!(total, 1_000_000 + 120 * 10_000);
}

#[test]
fn cpos_epoch_sim_exact_issuance() {
    let engine = CPosEngine::new(32, 1_000, 10_000);
    let mut sim = CPosSim::new(engine, &[200_000, 800_000], 384);
    let mut rng = blockchain_fairness::stats::rng::Xoshiro256StarStar::new(7);
    sim.run_epochs(100, &mut rng);
    assert_eq!(sim.ledger().total_supply(), 1_000_000 + 100 * 11_000);
    let f = sim.reward_fraction(0) + sim.reward_fraction(1);
    assert!((f - 1.0).abs() < 1e-9);
}

#[test]
fn experiments_reproducible_across_thread_counts() {
    // The Monte-Carlo runner guarantees per-repetition seeds; chain-level
    // experiments must therefore be identical under different parallelism.
    let config = ExperimentConfig::two_miner(ProtocolKind::SlPos, 0.2, 0.01, 60);
    let run = |threads: usize| {
        run_monte_carlo(McConfig::new(12, 99).with_threads(threads), |_i, rng| {
            run_experiment(&config, rng).final_lambda
        })
    };
    assert_eq!(run(1), run(4));
}
