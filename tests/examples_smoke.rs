//! Smoke test: every example must *run*, not just compile, so the
//! `examples/` directory cannot rot. Each example is executed via
//! `cargo run --example` in the same profile as this test run (a cache
//! hit, since `cargo test` already built the examples).

use std::process::Command;

const EXAMPLES: [&str; 6] = [
    "quickstart",
    "rich_get_richer",
    "protocol_comparison",
    "chain_simulation",
    "fair_protocol_design",
    "mining_pools",
];

#[test]
fn every_example_runs_to_completion() {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let manifest_dir = env!("CARGO_MANIFEST_DIR");
    for example in EXAMPLES {
        let output = Command::new(&cargo)
            .current_dir(manifest_dir)
            .args(["run", "--quiet", "--example", example])
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn cargo for example {example}: {e}"));
        assert!(
            output.status.success(),
            "example `{example}` exited with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
            output.status.code(),
            String::from_utf8_lossy(&output.stdout),
            String::from_utf8_lossy(&output.stderr),
        );
        assert!(
            !output.stdout.is_empty(),
            "example `{example}` printed nothing"
        );
    }
}
