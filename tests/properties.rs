//! Property-based tests over the public API: invariants that must hold for
//! arbitrary parameters, checked with proptest.

use blockchain_fairness::chain::{proportional_split, MerkleTree, U256};
use blockchain_fairness::prelude::*;
use proptest::prelude::*;

proptest! {
    // ------------------------------------------------------------------
    // U256 algebra vs the u128 oracle.
    // ------------------------------------------------------------------

    #[test]
    fn u256_add_matches_u128(x in any::<u64>(), y in any::<u64>()) {
        let sum = U256::from_u64(x) + U256::from_u64(y);
        prop_assert_eq!(sum.low_u128(), x as u128 + y as u128);
    }

    #[test]
    fn u256_mul_matches_u128(x in any::<u64>(), y in any::<u64>()) {
        let prod = U256::from_u64(x) * U256::from_u64(y);
        prop_assert_eq!(prod.low_u128(), x as u128 * y as u128);
    }

    #[test]
    fn u256_div_rem_reconstructs(x in any::<u128>(), y in 1u128..) {
        let (q, r) = U256::from_u128(x).div_rem(U256::from_u128(y));
        prop_assert!(r < U256::from_u128(y));
        let back = q * U256::from_u128(y) + r;
        prop_assert_eq!(back, U256::from_u128(x));
    }

    #[test]
    fn u256_shift_roundtrip(x in any::<u64>(), s in 0u32..192) {
        let v = U256::from_u64(x);
        prop_assert_eq!((v << s) >> s, v);
    }

    #[test]
    fn u256_be_bytes_roundtrip(words in prop::array::uniform4(any::<u64>())) {
        let v = U256::from_limbs(words);
        prop_assert_eq!(U256::from_be_bytes(v.to_be_bytes()), v);
    }

    #[test]
    fn u256_mul_div_exact_when_divisible(x in 1u64..1_000_000, m in 1u64..1_000_000) {
        // (x·m)/m == x via the wide path as well.
        let r = U256::from_u64(x).mul_div(U256::from_u64(m), U256::from_u64(m));
        prop_assert_eq!(r, U256::from_u64(x));
    }

    // ------------------------------------------------------------------
    // Ledger / reward apportionment.
    // ------------------------------------------------------------------

    #[test]
    fn proportional_split_is_exact_and_fair(
        total in 0u64..1_000_000_000,
        weights in prop::collection::vec(0u64..1_000_000, 1..12),
    ) {
        prop_assume!(weights.iter().sum::<u64>() > 0);
        let shares = proportional_split(total, &weights);
        prop_assert_eq!(shares.iter().sum::<u64>(), total);
        // No share deviates from the real-valued proportion by ≥ 1 atom.
        let wsum: f64 = weights.iter().map(|&w| w as f64).sum();
        for (s, w) in shares.iter().zip(&weights) {
            let ideal = total as f64 * *w as f64 / wsum;
            prop_assert!((*s as f64 - ideal).abs() < 1.0 + 1e-6);
        }
    }

    // ------------------------------------------------------------------
    // Merkle proofs.
    // ------------------------------------------------------------------

    #[test]
    fn merkle_proofs_verify_for_random_sizes(n in 1usize..40, probe in 0usize..40) {
        let leaves: Vec<_> = (0..n as u64)
            .map(|i| blockchain_fairness::chain::HashBuilder::new("p").u64(i).finish())
            .collect();
        let tree = MerkleTree::build(&leaves);
        let idx = probe % n;
        let proof = tree.prove(idx);
        prop_assert!(MerkleTree::verify(&tree.root(), &leaves[idx], &proof));
        // A proof for one leaf never verifies another.
        if n > 1 {
            let other = (idx + 1) % n;
            prop_assert!(!MerkleTree::verify(&tree.root(), &leaves[other], &proof));
        }
    }

    // ------------------------------------------------------------------
    // Mining-game invariants for arbitrary parameters.
    // ------------------------------------------------------------------

    #[test]
    fn game_conserves_stake_and_income(
        a in 0.05f64..0.95,
        w in 1e-4f64..0.2,
        n in 1u64..300,
        seed in any::<u64>(),
    ) {
        let mut game = MiningGame::new(MlPos::new(w), &two_miner(a));
        let mut rng = Xoshiro256StarStar::new(seed);
        game.run(n, &mut rng);
        // Total staking power = 1 + n·w.
        let stakes: f64 = game.stake(0) + game.stake(1);
        prop_assert!((stakes - (1.0 + n as f64 * w)).abs() < 1e-9);
        // Income adds up to issuance, λ's sum to 1.
        let lam = game.lambda(0) + game.lambda(1);
        prop_assert!((lam - 1.0).abs() < 1e-9);
        prop_assert!((0.0..=1.0).contains(&game.lambda(0)));
    }

    #[test]
    fn withholding_never_changes_income_only_stakes(
        a in 0.1f64..0.9,
        period in 1u64..50,
        seed in any::<u64>(),
    ) {
        // With the same seed, the reward *allocation sequence* differs under
        // withholding (stakes freeze), but conservation still holds and the
        // pending stake lands exactly at period boundaries.
        let n = 4 * period;
        let mut game = MiningGame::new(MlPos::new(0.01), &two_miner(a))
            .with_withholding(WithholdingSchedule::every(period));
        let mut rng = Xoshiro256StarStar::new(seed);
        game.run(n, &mut rng);
        let stakes = game.stake(0) + game.stake(1);
        prop_assert!((stakes - (1.0 + n as f64 * 0.01)).abs() < 1e-9);
    }

    #[test]
    fn slpos_win_probabilities_form_distribution(
        raw in prop::collection::vec(0.01f64..10.0, 2..10),
    ) {
        let total: f64 = raw.iter().sum();
        let stakes: Vec<f64> = raw.iter().map(|s| s / total).collect();
        let probs = theory::slpos::win_probabilities(&stakes);
        let sum: f64 = probs.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-6, "sum {}", sum);
        prop_assert!(probs.iter().all(|&p| (0.0..=1.0 + 1e-12).contains(&p)));
    }

    #[test]
    fn epsilon_delta_fair_area_contains_share(a in 0.01f64..0.99, eps in 0.0f64..1.0) {
        let ed = EpsilonDelta::new(eps, 0.1);
        prop_assert!(ed.is_fair(a, a), "a itself must always be fair");
        let (lo, hi) = ed.fair_area(a);
        prop_assert!(lo <= a && a <= hi);
    }

    // ------------------------------------------------------------------
    // Theory bound sanity for arbitrary parameters.
    // ------------------------------------------------------------------

    #[test]
    fn hoeffding_bound_dominates_exact_binomial(
        n in 10u64..3000,
        a_pct in 5u32..95,
    ) {
        let a = f64::from(a_pct) / 100.0;
        let exact = theory::pow::exact_unfair_probability(n, a, 0.1);
        let bound = theory::pow::hoeffding_unfair_bound(n, a, 0.1);
        prop_assert!(bound >= exact - 1e-9, "bound {} < exact {}", bound, exact);
    }

    #[test]
    fn cpos_lhs_improves_with_inflation_and_shards(
        n in 10u64..10_000,
        w_ppm in 1u64..100_000,
        v_ppm in 0u64..100_000,
        p in 1u32..64,
    ) {
        let w = w_ppm as f64 / 1e6;
        let v = v_ppm as f64 / 1e6;
        let base = theory::cpos::condition_lhs(n, w, v, p);
        prop_assert!(theory::cpos::condition_lhs(n, w, v, p + 1) <= base + 1e-15);
        prop_assert!(theory::cpos::condition_lhs(n, w, v + 1e-4, p) <= base + 1e-15);
    }
}
