//! Integration tests: the paper's theorems (fairness-core::theory) against
//! large Monte-Carlo simulations of the closed-form games — every analytic
//! claim in Sections 3 and 4 is checked against the corresponding sampler.

use blockchain_fairness::prelude::*;

fn paper_ensemble(a: f64, horizon: u64, reps: usize, seed: u64) -> EnsembleConfig {
    EnsembleConfig {
        checkpoints: vec![horizon],
        ..EnsembleConfig::paper_default(a, horizon, reps, seed)
    }
}

#[test]
fn pow_exact_binomial_matches_simulation() {
    // Theorem 4.2 context: simulated unfair probability equals the exact
    // binomial computation within Monte-Carlo error.
    for &(n, a) in &[(500u64, 0.2), (1500, 0.2), (800, 0.3)] {
        let summary = run_ensemble(
            &Pow::new(&two_miner(a), 0.01),
            &paper_ensemble(a, n, 4000, 11),
        );
        let simulated = summary.final_point().unfair_probability;
        let exact = theory::pow::exact_unfair_probability(n, a, 0.1);
        let se = (exact * (1.0 - exact) / 4000.0).sqrt();
        assert!(
            (simulated - exact).abs() < 5.0 * se + 0.01,
            "n={n} a={a}: simulated {simulated} vs exact {exact}"
        );
    }
}

#[test]
fn pow_sufficient_n_is_indeed_sufficient() {
    // At Theorem 4.2's n the simulated unfair probability is below δ.
    let ed = EpsilonDelta::default();
    let n = theory::pow::sufficient_n(0.2, ed);
    let summary = run_ensemble(
        &Pow::new(&two_miner(0.2), 0.01),
        &paper_ensemble(0.2, n, 4000, 13),
    );
    let unfair = summary.final_point().unfair_probability;
    assert!(unfair <= ed.delta, "unfair {unfair} at sufficient n={n}");
}

#[test]
fn mlpos_terminal_distribution_matches_beta_limit() {
    // Section 4.3: λ_A(n→∞) ~ Beta(a/w, b/w). Compare the simulated
    // terminal ECDF at n = 5000 with the limit CDF (they differ by a small
    // finite-n correction).
    use blockchain_fairness::stats::dist::ContinuousDistribution;
    use blockchain_fairness::stats::histogram::Ecdf;

    let (a, w) = (0.2, 0.01);
    let reps = 4000;
    let config = paper_ensemble(a, 5000, reps, 17);
    let samples = blockchain_fairness::stats::mc::run_monte_carlo(
        blockchain_fairness::stats::mc::McConfig::new(reps, 17),
        |_i, rng| {
            let mut game = MiningGame::new(MlPos::new(w), &two_miner(a));
            game.run(5000, rng);
            game.lambda(0)
        },
    );
    drop(config);
    let ecdf = Ecdf::new(samples);
    let beta = theory::mlpos::limit_distribution(a, w);
    let ks = ecdf.ks_statistic(|x| beta.cdf(x));
    assert!(ks < 0.05, "KS distance to Beta(20,80): {ks}");
}

#[test]
fn mlpos_exact_polya_matches_simulation() {
    let (a, w, n) = (0.2, 0.01, 800u64);
    let summary = run_ensemble(&MlPos::new(w), &paper_ensemble(a, n, 4000, 19));
    let simulated = summary.final_point().unfair_probability;
    let exact = theory::mlpos::exact_unfair_probability(n as usize, a, w, 0.1);
    assert!(
        (simulated - exact).abs() < 0.03,
        "simulated {simulated} vs exact Pólya DP {exact}"
    );
}

#[test]
fn slpos_first_block_win_probability_matches_eq_1() {
    // Eq. (1): Pr[A wins block 1] = a/(2b) for a <= b.
    let reps = 20_000;
    for &a in &[0.1, 0.2, 0.4] {
        let samples = blockchain_fairness::stats::mc::run_monte_carlo(
            blockchain_fairness::stats::mc::McConfig::new(reps, 23),
            |_i, rng| {
                let mut game = MiningGame::new(SlPos::new(0.01), &two_miner(a));
                game.step(rng);
                game.lambda(0)
            },
        );
        let win_rate = samples.iter().filter(|&&l| l > 0.5).count() as f64 / reps as f64;
        let expect = theory::slpos::win_probability_two_miner(a);
        let se = (expect * (1.0 - expect) / reps as f64).sqrt();
        assert!(
            (win_rate - expect).abs() < 5.0 * se,
            "a={a}: win rate {win_rate} vs Eq.(1) {expect}"
        );
    }
}

#[test]
fn slpos_monopolizes_per_theorem_4_9() {
    // Long SL-PoS games end near absorption; from a = 0.2 the poor miner
    // almost always loses everything.
    let reps = 300;
    let samples = blockchain_fairness::stats::mc::run_monte_carlo(
        blockchain_fairness::stats::mc::McConfig::new(reps, 29),
        |_i, rng| {
            let mut game = MiningGame::new(SlPos::new(0.05), &two_miner(0.2));
            game.run(100_000, rng);
            game.stake(0) / (game.stake(0) + game.stake(1))
        },
    );
    let absorbed = samples
        .iter()
        .filter(|&&z| !(0.02..=0.98).contains(&z))
        .count();
    assert!(
        absorbed as f64 / reps as f64 > 0.95,
        "only {absorbed}/{reps} games reached absorption"
    );
    let died = samples.iter().filter(|&&z| z < 0.02).count();
    assert!(
        died as f64 / reps as f64 > 0.9,
        "poor miner survived too often: died {died}/{reps}"
    );
}

#[test]
fn lemma_6_1_matches_multi_miner_simulation() {
    // Multi-miner SL-PoS first-block win probabilities against the exact
    // polynomial integral.
    let stakes = paper_multi_miner(10, 0.2);
    let exact = theory::slpos::win_probabilities(&stakes);
    let reps = 30_000;
    let winners = blockchain_fairness::stats::mc::run_monte_carlo(
        blockchain_fairness::stats::mc::McConfig::new(reps, 31),
        |_i, rng| SlPos::sample_winner(&stakes, rng),
    );
    let mut counts = vec![0u64; stakes.len()];
    for w in winners {
        counts[w] += 1;
    }
    for (i, &e) in exact.iter().enumerate() {
        let emp = counts[i] as f64 / reps as f64;
        let se = (e * (1.0 - e) / reps as f64).sqrt();
        assert!(
            (emp - e).abs() < 5.0 * se + 0.002,
            "miner {i}: empirical {emp} vs Lemma 6.1 {e}"
        );
    }
    // Miner A (largest) wins more than her share — the Table 1 mechanism.
    assert!(exact[0] > 0.2, "largest miner advantage: {}", exact[0]);
}

#[test]
fn cpos_sufficient_condition_certifies_fair_runs() {
    // Where Theorem 4.10 certifies fairness, simulation agrees.
    let ed = EpsilonDelta::default();
    let (w, v, p, a, n) = (0.01, 0.1, 32, 0.2, 3000u64);
    assert!(theory::cpos::sufficient_condition(n, w, v, p, a, ed));
    let summary = run_ensemble(&CPos::new(w, v, p), &paper_ensemble(a, n, 4000, 37));
    let unfair = summary.final_point().unfair_probability;
    assert!(unfair <= ed.delta, "unfair {unfair} despite certification");
}

#[test]
fn expectational_fairness_table() {
    // Theorems 3.2, 3.3, 3.5 + FSL treatment: E[λ_A] = a for PoW, ML-PoS,
    // C-PoS, FSL-PoS; Theorem 3.4: SL-PoS is biased low.
    let a = 0.3;
    let config = paper_ensemble(a, 2000, 4000, 41);
    let shares = two_miner(a);
    let fair_means = [
        run_ensemble(&Pow::new(&shares, 0.01), &config)
            .final_point()
            .mean,
        run_ensemble(&MlPos::new(0.01), &config).final_point().mean,
        run_ensemble(&CPos::new(0.01, 0.1, 1), &config)
            .final_point()
            .mean,
        run_ensemble(&FslPos::new(0.01), &config).final_point().mean,
    ];
    for (i, mean) in fair_means.iter().enumerate() {
        assert!((mean - a).abs() < 0.01, "protocol {i}: mean {mean} != {a}");
    }
    let sl_mean = run_ensemble(&SlPos::new(0.01), &config).final_point().mean;
    assert!(sl_mean < a - 0.05, "SL-PoS must under-pay: {sl_mean}");
}
