//! The headline question: do the rich get richer under SL-PoS?
//!
//! Follows one poor miner (20%) and one rich miner (80%) through a single
//! SL-PoS mining game, printing the stake trajectory, then quantifies the
//! monopolization probability over an ensemble — Theorem 4.9 in action.
//!
//! ```sh
//! cargo run --release --example rich_get_richer
//! ```

use blockchain_fairness::prelude::*;

fn main() {
    let w = 0.01;

    // --- One sample path -------------------------------------------------
    println!("single SL-PoS game, a = 0.2, w = {w}:");
    println!("{:>8} {:>12} {:>12}", "block", "A's share", "A's λ");
    let mut game = MiningGame::new(SlPos::new(w), &two_miner(0.2));
    let mut rng = Xoshiro256StarStar::new(2024);
    for checkpoint in [10u64, 100, 1000, 10_000, 100_000] {
        while game.steps() < checkpoint {
            game.step(&mut rng);
        }
        let share = game.stake(0) / (game.stake(0) + game.stake(1));
        println!("{:>8} {:>12.4} {:>12.4}", checkpoint, share, game.lambda(0));
    }

    // --- Theory: the drift that causes it --------------------------------
    println!("\nwhy: the SL-PoS win probability is not proportional to stake —");
    println!("     a miner at share z wins with probability z/(2(1−z)) for z ≤ ½:");
    for z in [0.1, 0.2, 0.3, 0.4, 0.5] {
        println!(
            "     share {:.1} → win prob {:.4} (fair would be {:.1})",
            z,
            theory::slpos::win_probability_two_miner(z),
            z
        );
    }

    // --- Ensemble: absorption frequencies --------------------------------
    let reps = 500;
    let horizon = 200_000;
    println!("\nensemble of {reps} games to {horizon} blocks:");
    for a in [0.2, 0.4, 0.5] {
        let config = EnsembleConfig {
            checkpoints: vec![horizon],
            ..EnsembleConfig::paper_default(a, horizon, reps, 7)
        };
        let summary = run_ensemble(&SlPos::new(w), &config);
        let p = summary.final_point();
        println!(
            "  a = {a:.1}: mean λ_A = {:.4}, 5th pct = {:.4}, 95th pct = {:.4}",
            p.mean, p.p05, p.p95
        );
    }
    println!("\nTheorem 4.9: λ_A → 0 or 1 almost surely — the game always ends in monopoly.");
    println!(
        "At a = 0.5 the coin is fair (half the games each way); below it, the poor miner dies."
    );
}
