//! Compare all eight implemented incentive models on one scenario, the way
//! Section 6.4 of the paper surveys the protocol landscape.
//!
//! ```sh
//! cargo run --release --example protocol_comparison
//! ```

use blockchain_fairness::prelude::*;

fn run(name: &str, protocol: &(impl IncentiveProtocol + Clone), config: &EnsembleConfig, a: f64) {
    let summary = run_ensemble(protocol, config);
    let p = summary.final_point();
    let ed = EpsilonDelta::default();
    println!(
        "{:<10} {:>9.4} {:>9.4} {:>11.4} {:>8} {:>8}",
        name,
        p.mean,
        p.mean - a,
        p.unfair_probability,
        if (p.mean - a).abs() < 0.01 {
            "yes"
        } else {
            "NO"
        },
        if ed.accepts(p.unfair_probability) {
            "yes"
        } else {
            "NO"
        },
    );
}

fn main() {
    let a = 0.2;
    let (w, v) = (0.01, 0.1);
    let config = EnsembleConfig {
        checkpoints: vec![500, 2000, 5000],
        ..EnsembleConfig::paper_default(a, 5000, 2000, 99)
    };

    println!(
        "a = {a}, w = {w}, v = {v}, horizon 5000, {} repetitions\n",
        config.repetitions
    );
    println!(
        "{:<10} {:>9} {:>9} {:>11} {:>8} {:>8}",
        "protocol", "mean λ", "bias", "unfair", "E-fair?", "robust?"
    );

    let shares = two_miner(a);
    run("PoW", &Pow::new(&shares, w), &config, a);
    run("ML-PoS", &MlPos::new(w), &config, a);
    run("SL-PoS", &SlPos::new(w), &config, a);
    run("FSL-PoS", &FslPos::new(w), &config, a);
    run("C-PoS", &CPos::new(w, v, 1), &config, a);
    run("NEO", &Neo::new(&shares, w), &config, a);
    run("Algorand", &Algorand::new(v), &config, a);
    run("EOS", &Eos::new(w, v), &config, a);

    println!("\nnotes:");
    println!("  SL-PoS bias is negative (rich-get-richer drains the poor miner).");
    println!("  EOS bias is positive (constant proposer pay over-rewards small delegates).");
    println!("  Algorand is absolutely fair — inflation only, zero variance — but offers");
    println!("  no participation incentive, the trade-off Section 6.4 discusses.");
}
