//! Quickstart: evaluate both fairness notions for one miner under the four
//! protocols the paper analyzes.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use blockchain_fairness::prelude::*;

fn main() {
    // The paper's running scenario: miner A holds a = 20% of the resource,
    // each block pays w = 1% of the initial circulation, C-PoS adds a
    // v = 10% inflation reward per epoch.
    let a = 0.2;
    let (w, v) = (0.01, 0.1);
    let horizon = 3000;
    let repetitions = 2000;

    println!(
        "miner A holds {:.0}% | w = {w} | v = {v} | horizon = {horizon} blocks",
        a * 100.0
    );
    println!(
        "(ε, δ) = (0.1, 0.1): fair area = [{:.3}, {:.3}]\n",
        0.9 * a,
        1.1 * a
    );
    println!(
        "{:<10} {:>10} {:>14} {:>14} {:>10}",
        "protocol", "mean λ_A", "5th–95th pct", "unfair prob", "verdict"
    );

    let config = EnsembleConfig::paper_default(a, horizon, repetitions, 42);
    let summaries = vec![
        run_ensemble(&Pow::new(&two_miner(a), w), &config),
        run_ensemble(&MlPos::new(w), &config),
        run_ensemble(&SlPos::new(w), &config),
        run_ensemble(&CPos::new(w, v, 1), &config),
    ];

    for summary in &summaries {
        let p = summary.final_point();
        let ed = EpsilonDelta::default();
        let expectational = (p.mean - a).abs() < 0.01;
        let robust = ed.accepts(p.unfair_probability);
        let verdict = match (expectational, robust) {
            (true, true) => "fair",
            (true, false) => "E-fair only",
            (false, _) => "unfair",
        };
        println!(
            "{:<10} {:>10.4} {:>6.3}–{:<6.3} {:>14.4} {:>10}",
            summary.protocol, p.mean, p.p05, p.p95, p.unfair_probability, verdict
        );
    }

    println!("\npaper's ranking (Section 1.2): PoW > C-PoS > ML-PoS > SL-PoS — reproduced above.");
}
