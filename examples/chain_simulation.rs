//! Run a full hash-level blockchain — blocks, Merkle roots, ledger,
//! mempool, difficulty — under two consensus engines, and watch fairness
//! emerge from the mechanism rather than from closed-form sampling.
//!
//! This is the workspace's stand-in for the paper's EC2 deployments of
//! Geth (PoW) and NXT (SL-PoS).
//!
//! ```sh
//! cargo run --release --example chain_simulation
//! ```

use blockchain_fairness::chain::{
    target_for_expected_interval, Engine, MlPosEngine, NetworkConfig, NetworkSim, PowEngine,
    SlPosEngine,
};
use blockchain_fairness::stats::rng::Xoshiro256StarStar;

fn describe(net: &NetworkSim, label: &str) {
    let chain = net.chain();
    let tip = chain.tip();
    println!("\n=== {label} ===");
    println!(
        "height {} | clock {} ticks | supply {} atoms",
        chain.height(),
        net.clock(),
        net.ledger().total_supply()
    );
    println!(
        "tip {} (merkle {})",
        tip.hash().short_hex(),
        tip.header.merkle_root.short_hex()
    );
    let user_txs: usize = chain
        .iter()
        .map(|b| b.transactions.iter().filter(|t| !t.is_coinbase()).count())
        .sum();
    println!("user transactions mined: {user_txs}");
    println!(
        "miner A: {} blocks won (λ = {:.4}), stake {} atoms",
        net.wins(0),
        net.win_fraction(0),
        net.stake(0)
    );
    println!(
        "miner B: {} blocks won (λ = {:.4}), stake {} atoms",
        net.wins(1),
        net.win_fraction(1),
        net.stake(1)
    );
    assert!(net.ledger().check_supply_invariant(), "supply invariant");
}

fn main() {
    let blocks = 2000;

    // PoW network: hash power 20/80, like two Geth miners.
    let mut rng = Xoshiro256StarStar::new(11);
    let mut pow = NetworkSim::new(
        NetworkConfig {
            engine: Engine::Pow(PowEngine::new(target_for_expected_interval(10, 5))),
            initial_stakes: vec![200_000, 800_000],
            hash_rates: vec![2, 8],
            block_reward: 10_000,
            txs_per_block: 4,
            propagation_delay: 1,
            pow_retarget: None,
        },
        &mut rng,
    );
    pow.run_blocks(blocks, &mut rng);
    describe(&pow, "PoW (Geth stand-in): λ_A should track hash power 0.2");

    // ML-PoS network: stakes 20/80, like two Qtum stakers.
    let mut rng = Xoshiro256StarStar::new(12);
    let mut mlpos = NetworkSim::new(
        NetworkConfig {
            engine: Engine::MlPos(MlPosEngine::for_expected_interval(1_000_000, 64)),
            initial_stakes: vec![200_000, 800_000],
            hash_rates: vec![],
            block_reward: 10_000,
            txs_per_block: 4,
            propagation_delay: 1,
            pow_retarget: None,
        },
        &mut rng,
    );
    mlpos.run_blocks(blocks, &mut rng);
    describe(
        &mlpos,
        "ML-PoS (Qtum stand-in): λ_A fair in expectation, wide spread",
    );

    // SL-PoS network: the NXT lottery — watch the poor miner fade.
    let mut rng = Xoshiro256StarStar::new(13);
    let mut slpos = NetworkSim::new(
        NetworkConfig {
            engine: Engine::SlPos(SlPosEngine::new(1_000)),
            initial_stakes: vec![200_000, 800_000],
            hash_rates: vec![],
            block_reward: 10_000,
            txs_per_block: 4,
            propagation_delay: 1,
            pow_retarget: None,
        },
        &mut rng,
    );
    slpos.run_blocks(blocks, &mut rng);
    describe(&slpos, "SL-PoS (NXT stand-in): the rich get richer");

    println!("\nall three chains validated block-by-block: headers, Merkle roots,");
    println!("lottery proofs, ledger supply — fairness differences come purely from");
    println!("the consensus rule.");
}
