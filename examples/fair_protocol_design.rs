//! Designing a fair PoS protocol with the paper's levers (Section 6):
//! fix SL-PoS with the FSL time function, then push robust fairness with
//! smaller rewards, inflation, sharding, and reward withholding.
//!
//! ```sh
//! cargo run --release --example fair_protocol_design
//! ```

use blockchain_fairness::prelude::*;

fn unfair_at(
    protocol: &(impl IncentiveProtocol + Clone),
    withholding: Option<WithholdingSchedule>,
    horizon: u64,
) -> f64 {
    let config = EnsembleConfig {
        checkpoints: vec![horizon],
        withholding,
        ..EnsembleConfig::paper_default(0.2, horizon, 2000, 5)
    };
    run_ensemble(protocol, &config)
        .final_point()
        .unfair_probability
}

fn main() {
    let ed = EpsilonDelta::default();
    println!("goal: (ε, δ) = (0.1, 0.1)-fairness for a 20% miner\n");

    // Step 0: the broken baseline.
    let sl = unfair_at(&SlPos::new(0.01), None, 5000);
    println!("step 0  SL-PoS (NXT rule)                unfair = {sl:.3}   [monopolizes]");

    // Step 1: fix the time function (Section 6.2).
    let fsl = unfair_at(&FslPos::new(0.01), None, 5000);
    println!("step 1  + FSL time function              unfair = {fsl:.3}   [E-fair, not robust]");

    // Step 2: reduce the block reward (Section 6.3, 'less block reward').
    let small_w = unfair_at(&FslPos::new(1e-4), None, 5000);
    println!("step 2  + shrink w to 1e-4               unfair = {small_w:.3}   [Thm 4.3 regime]");

    // Step 2': alternatively, withhold rewards (Section 6.3).
    let withheld = unfair_at(
        &FslPos::new(0.01),
        Some(WithholdingSchedule::every(1000)),
        5000,
    );
    println!("step 2' + withholding every 1000 blocks  unfair = {withheld:.3}   [LLN per period]");

    // Step 3: C-PoS style — add inflation reward.
    let cpos = unfair_at(&CPos::new(0.01, 0.1, 1), None, 5000);
    println!(
        "step 3  + inflation v = 0.1 (C-PoS)      unfair = {cpos:.3}   [dilutes lottery noise]"
    );

    // Step 4: shard the proposer lottery (Theorem 4.10's 1/P factor).
    let sharded = unfair_at(&CPos::new(0.01, 0.1, 32), None, 5000);
    println!("step 4  + P = 32 shards                  unfair = {sharded:.3}   [Thm 4.10]");

    println!("\ntheory cross-check (Theorem 4.10 sufficient conditions at n = 5000):");
    for (label, w, v, p) in [
        ("w=0.01, v=0,   P=1 ", 0.01, 0.0, 1u32),
        ("w=0.01, v=0.1, P=1 ", 0.01, 0.1, 1),
        ("w=0.01, v=0.1, P=32", 0.01, 0.1, 32),
        ("w=1e-4, v=0,   P=1 ", 1e-4, 0.0, 1),
    ] {
        let ok = theory::cpos::sufficient_condition(5000, w, v, p, 0.2, ed);
        println!("  {label} → certified fair: {ok}");
    }
    println!("\nevery lever the paper proposes, reproduced end to end.");
}
