//! Why do mining pools form — and which protocols remove the motive?
//!
//! Section 6.5 argues that robust fairness removes the incentive to pool:
//! pooling never changes expected income, only its variance, so if the
//! protocol already concentrates income there is nothing to gain. This
//! example measures income variance with and without pooling under ML-PoS
//! (not robustly fair → pooling helps a lot) and C-PoS (robustly fair →
//! pooling barely matters), and shows pooling flipping the *survival* odds
//! of small miners under SL-PoS.
//!
//! ```sh
//! cargo run --release --example mining_pools
//! ```

use blockchain_fairness::prelude::*;

fn band(
    label: &str,
    protocol: &(impl IncentiveProtocol + Clone),
    shares: &[f64],
    horizon: u64,
) -> (f64, f64) {
    let config = EnsembleConfig {
        initial_shares: shares.to_vec(),
        checkpoints: vec![horizon],
        repetitions: 3000,
        seed: 2027,
        eps_delta: EpsilonDelta::default(),
        withholding: None,
    };
    let p = run_ensemble(protocol, &config).final_point();
    println!(
        "  {label:<28} mean λ_A = {:.4}   90% band width = {:.4}",
        p.mean,
        p.p95 - p.p05
    );
    (p.mean, p.p95 - p.p05)
}

fn main() {
    // Miner A (20%) and a partner (30%) face a whale (50%).
    let shares = [0.2, 0.3, 0.5];
    let horizon = 1000;

    // The fair area for a 20% miner at (ε, δ) = (0.1, 0.1) is ±0.02 wide.
    let fair_width = 0.04;

    println!("ML-PoS (w = 0.01), miner A = 20% vs partner 30% and whale 50%:");
    let (_, solo_w) = band("solo", &MlPos::new(0.01), &shares, horizon);
    let (_, pool_w) = band(
        "pooled with the partner",
        &MiningPool::new(MlPos::new(0.01), vec![0, 1]),
        &shares,
        horizon,
    );
    println!(
        "  → solo income spread is {:.1}× the fair area; pooling cuts it to {:.1}× —\n    a strong motive to centralize into pools\n",
        solo_w / fair_width,
        pool_w / fair_width
    );

    println!("C-PoS (w = 0.01, v = 0.1): already robustly fair —");
    let (_, solo_w) = band("solo", &CPos::new(0.01, 0.1, 1), &shares, horizon);
    let (_, pool_w) = band(
        "pooled with the partner",
        &MiningPool::new(CPos::new(0.01, 0.1, 1), vec![0, 1]),
        &shares,
        horizon,
    );
    println!(
        "  → solo income already sits inside the fair area ({:.1}× its width); pooling\n    has little left to stabilize ({:.1}×) — the motive §6.5 says robust fairness removes\n",
        solo_w / fair_width,
        pool_w / fair_width
    );

    println!("SL-PoS (w = 0.05): pooling changes who survives monopolization —");
    let reps = 300u64;
    let mut solo_wins = 0u64;
    let mut pooled_wins = 0u64;
    for seed in 0..reps {
        let mut rng = Xoshiro256StarStar::new(9000 + seed);
        let mut game = MiningGame::new(SlPos::new(0.05), &shares);
        game.run(30_000, &mut rng);
        if game.stake(0) + game.stake(1) > game.stake(2) {
            solo_wins += 1;
        }
        let mut rng = Xoshiro256StarStar::new(9000 + seed);
        let mut game = MiningGame::new(MiningPool::new(SlPos::new(0.05), vec![0, 1]), &shares);
        game.run(30_000, &mut rng);
        if game.stake(0) + game.stake(1) > game.stake(2) {
            pooled_wins += 1;
        }
    }
    println!(
        "  solo:   small miners end up controlling the chain in {:>3}/{reps} games",
        solo_wins
    );
    println!(
        "  pooled: small miners end up controlling the chain in {:>3}/{reps} games",
        pooled_wins
    );
    println!("\nfairness is a centralization question: protocols that fail robust fairness");
    println!("push miners into pools, and pools are how 51% attacks happen (Section 6.5).");
}
