#![warn(missing_docs)]

//! # blockchain-fairness
//!
//! *Do the rich get richer?* A production-quality Rust reproduction of the
//! fairness analysis for blockchain incentives by Huang, Tang, Cong, Lim
//! and Xu (SIGMOD 2021).
//!
//! This facade crate re-exports the workspace:
//!
//! * [`core`] (`fairness-core`) — fairness definitions (expectational and
//!   `(ε, δ)`-robust), the incentive protocols (PoW, ML-PoS, SL-PoS,
//!   C-PoS, FSL-PoS, NEO/Algorand/EOS sketches), the mining-game engine,
//!   Monte-Carlo ensembles, adversarial strategies (selfish mining, stake
//!   grinding), and every theorem of the paper as code;
//! * [`chain`] (`chain-sim`) — the blockchain substrate: U256, SHA-256,
//!   Merkle trees, ledger, mempool, difficulty rules, hash-level consensus
//!   engines and the multi-node network simulation standing in for the
//!   paper's Geth/Qtum/NXT testbed, including fork-aware adversarial
//!   racing (`ForkNetSim`);
//! * [`stats`] (`fairness-stats`) — the numerics substrate: RNG, special
//!   functions, distributions, concentration bounds, Pólya urns,
//!   stochastic approximation and a deterministic parallel Monte-Carlo
//!   runner.
//!
//! ## Quick start
//!
//! ```
//! use blockchain_fairness::prelude::*;
//!
//! // Is ML-PoS fair for a miner holding 20% of stakes at block reward 1%?
//! let config = EnsembleConfig::paper_default(0.2, 2000, 500, 42);
//! let summary = run_ensemble(&MlPos::new(0.01), &config);
//! let last = summary.final_point();
//! assert!((last.mean - 0.2).abs() < 0.02);      // fair in expectation...
//! assert!(last.unfair_probability > 0.1);       // ...but not robustly.
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the full
//! figure/table reproduction harness.

pub use chain_sim as chain;
pub use fairness_core as core;
pub use fairness_stats as stats;

/// One-stop imports for experiments: the core prelude plus the chain-sim
/// experiment API.
pub mod prelude {
    pub use chain_sim::{
        run_experiment, CPosSim, ExperimentConfig, ForkNetConfig, ForkNetSim, NetworkConfig,
        NetworkSim, ProtocolKind,
    };
    pub use fairness_core::prelude::*;
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        // Types from all three crates are reachable.
        let _ = crate::core::EpsilonDelta::default();
        let _ = crate::chain::U256::ONE;
        let _ = crate::stats::rng::SplitMix64::new(1);
    }
}
